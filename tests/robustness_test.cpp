// Resource governance (src/core/budget.h) and the deterministic fault
// injection harness (src/core/fault_inject.h): cancellation/deadline
// semantics of tokens, honest "undecided" under SAT budgets, database
// builds that are never cached when cancelled, waiters that cannot be
// wedged by a stuck builder, flow-level degradation, and the fault matrix
// — every injected fault, at 0/1/4 worker threads, must end in a verified
// equivalent network or a clean typed error, never a crash, hang, or
// silently wrong result.
#include "core/budget.h"
#include "core/fault_inject.h"
#include "core/flow.h"
#include "core/pass.h"
#include "core/xor_resynthesis.h"
#include "db/mc_database.h"
#include "db/sharded_store.h"
#include "exact/exact_mc.h"
#include "gen/arithmetic.h"
#include "io/bench.h"
#include "sat/solver.h"
#include "spectral/classification.h"
#include "xag/cleanup.h"
#include "xag/simulate.h"
#include "xag/verify.h"
#include "xag/xag.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

namespace mcx {
namespace {

using namespace std::chrono_literals;

/// Every test starts and ends with all fault sites disarmed, whatever the
/// previous test did.
class robustness : public ::testing::Test {
protected:
    void SetUp() override { fault_injection::disarm_all(); }
    void TearDown() override { fault_injection::disarm_all(); }
};

cancellation_token stopped_token(outcome reason = outcome::cancelled)
{
    static cancellation_source src; // keep state alive for returned tokens
    src.reset();
    src.request(reason);
    return src.token();
}

// ------------------------------------------------------------------ tokens

TEST_F(robustness, default_token_is_inert)
{
    const cancellation_token t;
    EXPECT_FALSE(t.stop_possible());
    EXPECT_FALSE(t.stop_requested());
    EXPECT_EQ(t.stop_reason(), outcome::ok);
}

TEST_F(robustness, source_stops_all_derived_tokens)
{
    cancellation_source src;
    const auto t = src.token();
    const auto nested = t.with_timeout(1e6);
    EXPECT_TRUE(t.stop_possible());
    EXPECT_FALSE(t.stop_requested());
    src.request(outcome::resource_exhausted);
    EXPECT_TRUE(t.stop_requested());
    EXPECT_TRUE(nested.stop_requested());
    EXPECT_EQ(nested.stop_reason(), outcome::resource_exhausted);
    src.reset();
    EXPECT_FALSE(t.stop_requested());
}

TEST_F(robustness, nested_deadline_tightens_only)
{
    const cancellation_token t;
    // An expired deadline stops immediately; re-deriving with a *longer*
    // timeout must not loosen it.
    const auto expired = t.with_timeout(1e-9);
    std::this_thread::sleep_for(2ms);
    EXPECT_TRUE(expired.stop_requested());
    EXPECT_EQ(expired.stop_reason(), outcome::deadline_exceeded);
    const auto still_expired = expired.with_timeout(1e6);
    EXPECT_TRUE(still_expired.stop_requested());
    // Non-positive timeout = ungoverned (no deadline added).
    EXPECT_FALSE(t.with_timeout(0.0).stop_possible());
}

TEST_F(robustness, throw_if_stopped_carries_reason)
{
    EXPECT_NO_THROW(throw_if_stopped({}));
    try {
        throw_if_stopped(stopped_token(outcome::deadline_exceeded));
        FAIL() << "expected cancelled_error";
    } catch (const cancelled_error& e) {
        EXPECT_EQ(e.reason(), outcome::deadline_exceeded);
    }
}

// --------------------------------------------------------- fault injection

TEST_F(robustness, fires_exactly_once_on_nth_hit)
{
    fault_injection::arm(fault_site::db_build, 3);
    EXPECT_NO_THROW(fault_injection::fire(fault_site::db_build));
    EXPECT_NO_THROW(fault_injection::fire(fault_site::db_build));
    EXPECT_THROW(fault_injection::fire(fault_site::db_build),
                 fault_injected_error);
    // One-shot: disarmed after firing; other sites were never armed.
    EXPECT_NO_THROW(fault_injection::fire(fault_site::db_build));
    EXPECT_NO_THROW(fault_injection::fire(fault_site::sat_budget));
    // Hits are counted only while the harness is armed (the disarmed fast
    // path is a single load), so the post-fire call above is not counted.
    EXPECT_EQ(fault_injection::hits(fault_site::db_build), 3u);
}

TEST_F(robustness, schedule_parsing)
{
    fault_injection::configure("db-build@2,sat-budget");
    EXPECT_NO_THROW(fault_injection::fire(fault_site::db_build));
    EXPECT_THROW(fault_injection::fire(fault_site::db_build),
                 fault_injected_error);
    EXPECT_THROW(fault_injection::fire(fault_site::sat_budget),
                 fault_injected_error);
    EXPECT_THROW(fault_injection::configure("no-such-site"),
                 std::invalid_argument);
    EXPECT_THROW(fault_injection::configure("db-build@x"),
                 std::invalid_argument);
    fault_injection::disarm_all();
    // A seeded schedule is deterministic: same seed, same firing hit.
    fault_injection::configure("seed=42,worker-task");
    uint64_t fired_at = 0;
    for (uint64_t i = 1; i <= 16 && fired_at == 0; ++i) {
        try {
            fault_injection::fire(fault_site::worker_task);
        } catch (const fault_injected_error&) {
            fired_at = i;
        }
    }
    ASSERT_NE(fired_at, 0u);
    fault_injection::disarm_all();
    fault_injection::configure("seed=42,worker-task");
    for (uint64_t i = 1; i < fired_at; ++i)
        EXPECT_NO_THROW(fault_injection::fire(fault_site::worker_task));
    EXPECT_THROW(fault_injection::fire(fault_site::worker_task),
                 fault_injected_error);
}

TEST_F(robustness, parse_site_reaches_both_readers)
{
    fault_injection::arm(fault_site::parse);
    std::stringstream good{"INPUT(a)\nOUTPUT(f)\nf = BUFF(a)\n"};
    EXPECT_THROW(read_bench(good), fault_injected_error);
    // Disarmed again (one-shot): the same input now parses.
    good.clear();
    good.seekg(0);
    EXPECT_NO_THROW(read_bench(good));
}

// ------------------------------------------- honest "undecided" under budget

sat::solver pigeonhole_4_into_3()
{
    // 4 pigeons, 3 holes: unsatisfiable, and refuting it takes real search.
    sat::solver s;
    uint32_t var[4][3];
    for (auto& row : var)
        for (auto& v : row)
            v = s.add_variable();
    for (int p = 0; p < 4; ++p)
        s.add_clause({sat::literal{var[p][0], false},
                      sat::literal{var[p][1], false},
                      sat::literal{var[p][2], false}});
    for (int h = 0; h < 3; ++h)
        for (int p = 0; p < 4; ++p)
            for (int q = p + 1; q < 4; ++q)
                s.add_clause({sat::literal{var[p][h], true},
                              sat::literal{var[q][h], true}});
    return s;
}

TEST_F(robustness, solver_budget_yields_undecided_not_unsat)
{
    auto full = pigeonhole_4_into_3();
    EXPECT_EQ(full.solve(), sat::solve_result::unsatisfiable);

    auto budgeted = pigeonhole_4_into_3();
    EXPECT_EQ(budgeted.solve(1), sat::solve_result::undecided);
}

TEST_F(robustness, solver_stopped_token_yields_undecided)
{
    auto s = pigeonhole_4_into_3();
    EXPECT_EQ(s.solve(0, stopped_token()), sat::solve_result::undecided);
    // The same solver finishes honestly once ungoverned.
    EXPECT_EQ(s.solve(), sat::solve_result::unsatisfiable);
}

TEST_F(robustness, sat_budget_fault_is_budget_exhaustion)
{
    fault_injection::arm(fault_site::sat_budget);
    auto s = pigeonhole_4_into_3();
    EXPECT_EQ(s.solve(), sat::solve_result::undecided);
}

TEST_F(robustness, exact_mc_tiny_budget_never_claims_optimal)
{
    // deg = 2 lower-bounds MC at 1, but MC((a&b)^(c&d)) = 2: the k = 1
    // step is genuinely UNSAT, and a 1-conflict budget cannot refute it.
    const auto f = (truth_table::projection(4, 0) &
                    truth_table::projection(4, 1)) ^
                   (truth_table::projection(4, 2) &
                    truth_table::projection(4, 3));
    const auto r = exact_mc_synthesis(f, {.conflict_budget = 1});
    EXPECT_FALSE(r.optimal);
    if (!r.success)
        EXPECT_EQ(r.status, outcome::resource_exhausted);
    // Ungoverned, the search certifies the true optimum.
    const auto exact = exact_mc_synthesis(f);
    ASSERT_TRUE(exact.success);
    EXPECT_TRUE(exact.optimal);
    EXPECT_EQ(exact.num_ands, 2u);
}

TEST_F(robustness, exact_mc_stopped_token_reports_reason)
{
    const auto f = truth_table::projection(4, 0) &
                   truth_table::projection(4, 1);
    const auto r = exact_mc_synthesis(
        f, {.token = stopped_token(outcome::deadline_exceeded)});
    EXPECT_FALSE(r.success);
    EXPECT_FALSE(r.optimal);
    EXPECT_EQ(r.status, outcome::deadline_exceeded);
}

// -------------------------------------------------------- database caching

truth_table nontrivial_representative()
{
    const auto f = (truth_table::projection(4, 0) &
                    truth_table::projection(4, 1)) ^
                   (truth_table::projection(4, 2) &
                    truth_table::projection(4, 3));
    const auto cls = classify_affine(f, {.iteration_limit = 2'000'000});
    EXPECT_TRUE(cls.success);
    return cls.representative;
}

TEST_F(robustness, budget_exhausted_entry_cached_as_heuristic)
{
    // Satellite regression: a timed-out exact synthesis must be cached as
    // a heuristic (non-optimal) entry, never promoted to proven-optimal.
    mc_database db{{.exact_conflict_budget = 1}};
    const auto rep = nontrivial_representative();
    const auto& e = db.lookup_or_build(rep);
    EXPECT_FALSE(e.optimal);
    EXPECT_EQ(simulate(e.circuit)[0], rep);
    EXPECT_EQ(db.heuristic_entries(), 1u);
    EXPECT_EQ(db.exact_entries(), 0u);
}

TEST_F(robustness, cancelled_build_is_not_cached)
{
    mc_database db;
    const auto rep = nontrivial_representative();
    EXPECT_THROW(db.lookup_or_build(rep, stopped_token()), cancelled_error);
    // Nothing was memoized: the slot is marked failed, no synthesis result
    // was recorded.
    EXPECT_EQ(db.exact_entries() + db.heuristic_entries(), 0u);
    // The next uncancelled lookup takes over the failed slot and builds
    // the real (here: exact and optimal) entry — a second miss, not a hit
    // on a poisoned cache.
    const auto& e = db.lookup_or_build(rep);
    EXPECT_TRUE(e.optimal);
    EXPECT_EQ(simulate(e.circuit)[0], rep);
    EXPECT_EQ(db.misses(), 2u);
}

TEST_F(robustness, db_build_fault_propagates_and_next_lookup_recovers)
{
    fault_injection::arm(fault_site::db_build);
    mc_database db;
    const auto rep = nontrivial_representative();
    EXPECT_THROW(db.lookup_or_build(rep), fault_injected_error);
    const auto& e = db.lookup_or_build(rep);
    EXPECT_EQ(simulate(e.circuit)[0], rep);
}

TEST_F(robustness, stopped_token_unblocks_waiter_on_stuck_builder)
{
    sharded_store<int, int> store;
    std::atomic<bool> builder_entered{false};
    std::atomic<bool> release_builder{false};
    std::thread builder{[&] {
        store.lookup_or_build(7, [&](int) {
            builder_entered = true;
            while (!release_builder)
                std::this_thread::sleep_for(1ms);
            return 42;
        });
    }};
    while (!builder_entered)
        std::this_thread::sleep_for(1ms);

    // A waiter without a token would block until the builder finishes; a
    // waiter whose token stops must unwind even though the builder is
    // still stuck.
    cancellation_source src;
    std::atomic<bool> waiter_unwound{false};
    std::thread waiter{[&] {
        try {
            store.lookup_or_build(7, [](int) { return -1; }, src.token());
        } catch (const cancelled_error&) {
            waiter_unwound = true;
        }
    }};
    std::this_thread::sleep_for(20ms);
    EXPECT_FALSE(waiter_unwound);
    src.request();
    waiter.join();
    EXPECT_TRUE(waiter_unwound);

    // The builder's eventual result is published untouched.
    release_builder = true;
    builder.join();
    EXPECT_EQ(store.lookup_or_build(7, [](int) { return -1; }), 42);
}

// --------------------------------------------------------- xor resynthesis

TEST_F(robustness, xor_resynthesis_stopped_token_keeps_network_consistent)
{
    auto net = cleanup(gen_adder(16));
    const auto golden = cleanup(net);
    const auto stats =
        xor_resynthesis(net, {.token = stopped_token()});
    EXPECT_EQ(stats.status, outcome::cancelled);
    EXPECT_TRUE(random_simulation_equal(cleanup(net), golden, 64, 1));
}

// ----------------------------------------------------------- flow behavior

flow_result run_mc_flow(xag& net, const flow_params& params,
                        const std::string& spec = "mc")
{
    const auto f = make_flow(spec, params);
    pass_context ctx{context_params(params)};
    return run_flow(net, f, ctx);
}

TEST_F(robustness, flow_cancelled_before_start_runs_nothing)
{
    auto net = cleanup(gen_adder(8));
    const auto golden = cleanup(net);
    flow_params params;
    params.token = stopped_token();
    const auto result = run_mc_flow(net, params);
    EXPECT_EQ(result.status, outcome::cancelled);
    EXPECT_TRUE(result.limit_hit);
    EXPECT_TRUE(result.passes.empty());
    EXPECT_TRUE(exhaustive_equal(cleanup(net), golden));
}

TEST_F(robustness, flow_deadline_yields_verified_best_effort)
{
    auto net = cleanup(gen_adder(16));
    const auto golden = cleanup(net);
    flow_params params;
    params.token = cancellation_token{}.with_timeout(0.05);
    const auto result = run_mc_flow(net, params);
    // The mc pass on adder:16 takes far longer than 50 ms, so the deadline
    // fires mid-pass; whatever was committed must still be equivalent.
    EXPECT_EQ(result.status, outcome::deadline_exceeded);
    EXPECT_TRUE(result.limit_hit);
    EXPECT_TRUE(random_simulation_equal(cleanup(net), golden, 64, 1));
}

TEST_F(robustness, pass_deadline_degrades_pass_but_flow_continues)
{
    auto net = cleanup(gen_adder(16));
    const auto golden = cleanup(net);
    flow_params params;
    params.pass_deadline_seconds = 0.05;
    const auto result = run_mc_flow(net, params, "mc+cleanup");
    // The mc pass is cut short, but the flow itself finishes: the pass
    // after it still runs and the flow-level status stays ok.
    ASSERT_EQ(result.passes.size(), 2u);
    EXPECT_EQ(result.passes[0].status, outcome::deadline_exceeded);
    EXPECT_EQ(result.passes[1].status, outcome::ok);
    EXPECT_EQ(result.status, outcome::ok);
    EXPECT_TRUE(result.limit_hit);
    EXPECT_TRUE(random_simulation_equal(cleanup(net), golden, 64, 1));
}

// -------------------------------------------------------------- fault matrix

TEST_F(robustness, fault_matrix_verified_network_or_typed_error)
{
    // Every site x thread-count combination must end with run_flow
    // *returning* (faults are converted to typed outcomes at pass
    // boundaries, never thrown to the caller), and the network — whether
    // fully optimized or stopped mid-flow — must stay equivalent.
    const fault_site sites[] = {
        fault_site::sat_budget,
        fault_site::db_build,
        fault_site::worker_task,
        fault_site::journal_overflow,
    };
    const uint32_t thread_counts[] = {0, 1, 4};
    const auto golden = cleanup(gen_adder(8));

    for (const auto site : sites) {
        for (const auto threads : thread_counts) {
            SCOPED_TRACE(std::string{"site="} + to_string(site) +
                         " threads=" + std::to_string(threads));
            fault_injection::disarm_all();
            fault_injection::arm(site);
            auto net = cleanup(golden);
            flow_params params;
            params.num_threads = threads;
            flow_result result;
            ASSERT_NO_THROW(result = run_mc_flow(net, params, "mc+xor"));
            // A fault that fired surfaces as a typed limit; a fault that
            // was absorbed (sat-budget -> heuristic fallback,
            // journal-overflow -> full rebuild) or whose site never ran
            // (worker-task at 0 threads) leaves the flow ok.
            if (result.status != outcome::ok)
                EXPECT_TRUE(result.limit_hit);
            EXPECT_TRUE(exhaustive_equal(cleanup(net), golden));
        }
    }
}

} // namespace
} // namespace mcx
