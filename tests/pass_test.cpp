// Pass framework, flow engine, arena-backed cut storage, and batched cone
// simulation.
#include "core/flow.h"
#include "core/pass.h"
#include "core/rewrite.h"
#include "cut/cut_enumeration.h"
#include "gen/arithmetic.h"
#include "xag/cleanup.h"
#include "xag/cone_batch.h"
#include "xag/simulate.h"
#include "xag/verify.h"

#include <gtest/gtest.h>

#include <random>

namespace mcx {
namespace {

xag random_network(uint64_t seed, int pis = 8, int gates = 120, int pos = 4)
{
    std::mt19937_64 rng{seed};
    xag net;
    std::vector<signal> pool;
    for (int i = 0; i < pis; ++i)
        pool.push_back(net.create_pi());
    for (int i = 0; i < gates; ++i) {
        const auto a = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        const auto b = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        pool.push_back((rng() & 1) ? net.create_and(a, b)
                                   : net.create_xor(a, b));
    }
    for (int i = 0; i < pos; ++i)
        net.create_po(pool[pool.size() - 1 - i]);
    return net;
}

// ------------------------------------------------------- cut arena storage

TEST(cut_arena, spans_match_per_node_sets)
{
    const auto net = random_network(11);
    const auto sets = enumerate_cuts(net);
    ASSERT_EQ(sets.size(), net.size());
    size_t total = 0;
    for (const auto n : net.topological_order()) {
        for (const auto& c : sets[n]) {
            EXPECT_GE(c.num_leaves, 1u);
            EXPECT_LE(c.num_leaves, max_cut_size);
        }
        total += sets[n].size();
    }
    EXPECT_EQ(sets.total_cuts(), total);
}

TEST(cut_arena, in_place_reuse_keeps_capacity_and_results)
{
    const auto net = random_network(12);
    cut_sets arena;
    enumerate_cuts(net, arena);
    const auto first_total = arena.total_cuts();
    const auto capacity = arena.capacity();
    ASSERT_GT(first_total, 0u);

    // Second enumeration into the same arena: identical results, no growth.
    enumerate_cuts(net, arena);
    EXPECT_EQ(arena.total_cuts(), first_total);
    EXPECT_EQ(arena.capacity(), capacity);
}

// --------------------------------------- stats are per call, never carried

TEST(cut_enumeration_stats, reset_between_calls)
{
    const auto net = random_network(13);
    cut_enumeration_stats stats;
    enumerate_cuts(net, {}, &stats);
    const auto first = stats;
    ASSERT_GT(first.total_cuts, 0u);
    ASSERT_GT(first.merged_pairs, 0u);

    // Reusing the same stats object must not accumulate.
    enumerate_cuts(net, {}, &stats);
    EXPECT_EQ(stats.total_cuts, first.total_cuts);
    EXPECT_EQ(stats.merged_pairs, first.merged_pairs);
    EXPECT_EQ(stats.duplicate_cuts, first.duplicate_cuts);
    EXPECT_EQ(stats.dominated_cuts, first.dominated_cuts);
    EXPECT_EQ(stats.evicted_cuts, first.evicted_cuts);
}

TEST(round_stats_audit, per_round_counters_are_independent)
{
    // Two rounds through one context: the second round's counters must
    // reflect only its own work (in particular cut_stats and the cache
    // deltas must not include round one's).
    auto net = gen_adder(24);
    pass_context ctx;
    // Full re-enumeration every round (the oracle path): with incremental
    // maintenance round 2 legitimately does *less* enumeration work, so
    // counter equality against a fresh measurement only holds here.
    rewrite_params params;
    params.incremental_cuts = false;
    const auto r1 = mc_rewrite_round(net, ctx, params);

    // Independent enumeration of the network exactly as round 2 will see
    // it: round 2's counters must equal this fresh measurement, which is
    // impossible if round 1's counters had been carried over.
    cut_enumeration_stats fresh;
    enumerate_cuts(net, {}, &fresh);

    const auto r2 = mc_rewrite_round(net, ctx, params);

    // Round 2 starts from round 1's result.
    EXPECT_EQ(r2.ands_before, r1.ands_after);
    EXPECT_EQ(r2.cut_stats.merged_pairs, fresh.merged_pairs);
    EXPECT_EQ(r2.cut_stats.total_cuts, fresh.total_cuts);
    EXPECT_EQ(r2.cut_stats.duplicate_cuts, fresh.duplicate_cuts);
    EXPECT_EQ(r2.cut_stats.dominated_cuts, fresh.dominated_cuts);
    // Cache traffic is a per-round delta: each evaluated cut classifies at
    // most once, so round 2's traffic is bounded by its own cut count —
    // impossible if round 1's traffic had been carried over.
    EXPECT_LE(r2.canon_cache_hits + r2.canon_cache_misses,
              r2.cuts_evaluated);
    EXPECT_LE(r1.canon_cache_hits + r1.canon_cache_misses,
              r1.cuts_evaluated);
}

// -------------------------------------------------- batched cone simulator

TEST(cone_simulator, matches_cone_function_on_enumerated_cuts)
{
    for (const uint64_t seed : {21u, 22u, 23u}) {
        const auto net = random_network(seed, 7, 90, 4);
        const auto sets = enumerate_cuts(net, {.cut_size = 6, .cut_limit = 8});
        cone_simulator sim;
        std::vector<cone_simulator::leaf_set> leaves;
        std::vector<uint64_t> words;
        for (const auto n : net.topological_order()) {
            if (!net.is_gate(n))
                continue;
            leaves.clear();
            for (const auto& c : sets[n])
                leaves.emplace_back(c.leaf_span().begin(),
                                    c.leaf_span().end());
            const auto valid = sim.simulate_cuts(net, n, leaves, words);
            for (size_t i = 0; i < leaves.size(); ++i) {
                ASSERT_TRUE((valid >> i) & 1)
                    << "enumerated cut must be simulable";
                const auto expected = cone_function(net, n, leaves[i]);
                ASSERT_EQ(words[i], expected.word())
                    << "node " << n << " cut " << i;
            }
        }
    }
}

TEST(cone_simulator, flags_cone_escape_and_forbidden_nodes)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto ab = net.create_and(a, b);
    const auto abc = net.create_xor(ab, c);
    net.create_po(abc);

    cone_simulator sim;
    // {a} is not a cut of abc: the cone escapes through b and c.
    EXPECT_FALSE(
        sim.cone_word(net, abc.node(), std::vector<uint32_t>{a.node()}));
    // {ab, c} is a cut.
    std::vector<uint32_t> good{std::min(ab.node(), c.node()),
                               std::max(ab.node(), c.node())};
    const auto w = sim.cone_word(net, abc.node(), good);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(*w, cone_function(net, abc.node(), good).word());
    // Forbidding an interior node fails the lane.
    EXPECT_FALSE(sim.cone_word(net, abc.node(),
                               std::vector<uint32_t>{a.node(), b.node(),
                                                     c.node()},
                               ab.node()));
}

TEST(cone_simulator, batched_and_unbatched_rewrites_agree)
{
    for (const uint64_t seed : {31u, 32u}) {
        const auto source = random_network(seed, 9, 150, 6);
        auto batched_net = cleanup(source); // two structurally identical
        auto legacy_net = cleanup(source);  // copies of the same network
        const auto golden = cleanup(source);

        pass_context ctx1, ctx2;
        rewrite_params batched;
        batched.batched_simulation = true;
        rewrite_params legacy;
        legacy.batched_simulation = false;
        const auto rb = mc_rewrite_round(batched_net, ctx1, batched);
        const auto rl = mc_rewrite_round(legacy_net, ctx2, legacy);

        EXPECT_TRUE(exhaustive_equal(cleanup(batched_net), golden));
        EXPECT_TRUE(exhaustive_equal(cleanup(legacy_net), golden));
        // Identical inputs and identical candidate evaluation order: the
        // batched path must replicate the per-cut path exactly.
        EXPECT_EQ(rb.ands_after, rl.ands_after) << "seed " << seed;
        EXPECT_EQ(rb.replacements, rl.replacements) << "seed " << seed;
        EXPECT_EQ(rb.cuts_evaluated, rl.cuts_evaluated) << "seed " << seed;
    }
}

// ------------------------------------------------------- passes and flows

TEST(pass_framework, mc_pass_records_history_and_preserves_function)
{
    auto net = random_network(41);
    const auto golden = cleanup(net);
    const auto before = net.num_ands();

    pass_context ctx;
    mc_rewrite_pass p;
    const auto ps = p.run(net, ctx);

    EXPECT_EQ(ps.pass_name, "mc-rewrite");
    EXPECT_EQ(ps.before.num_ands, before);
    EXPECT_EQ(ps.after.num_ands, net.num_ands());
    EXPECT_LE(ps.after.num_ands, ps.before.num_ands);
    EXPECT_FALSE(ps.rounds.empty());
    ASSERT_EQ(ctx.history.size(), 1u);
    EXPECT_EQ(ctx.history[0].pass_name, "mc-rewrite");
    EXPECT_TRUE(exhaustive_equal(cleanup(net), golden));
}

TEST(pass_framework, context_resources_are_shared_across_passes)
{
    auto net1 = gen_adder(16);
    auto net2 = gen_adder(16);
    pass_context ctx;
    mc_rewrite_pass p;
    p.run(net1, ctx);
    const auto db_size = ctx.mc_db().size();
    const auto misses_after_first = ctx.classification().misses();
    p.run(net2, ctx);
    // Second network hits the warmed database and cache.
    EXPECT_EQ(ctx.mc_db().size(), db_size);
    EXPECT_EQ(ctx.classification().misses(), misses_after_first);
    EXPECT_EQ(ctx.history.size(), 2u);
}

TEST(flow_engine, named_flows_build_and_unknown_names_throw)
{
    EXPECT_NO_THROW(make_flow("mc"));
    EXPECT_NO_THROW(make_flow("mc+xor"));
    EXPECT_NO_THROW(make_flow("size-baseline"));
    EXPECT_NO_THROW(make_flow("mc,xor,cleanup"));
    EXPECT_THROW(make_flow("frobnicate"), std::invalid_argument);
    EXPECT_THROW(make_flow(""), std::invalid_argument);
    EXPECT_EQ(make_flow("mc+xor+cleanup").passes.size(), 3u);
}

TEST(flow_engine, mc_xor_flow_preserves_function_and_reduces_ands)
{
    auto net = gen_adder(16);
    const auto golden = cleanup(net);
    const auto before = stats_of(net);

    pass_context ctx;
    const auto result = run_flow(net, make_flow("mc+xor+cleanup"), ctx);

    EXPECT_EQ(result.flow_name, "mc+xor+cleanup");
    EXPECT_EQ(result.before.num_ands, before.num_ands);
    EXPECT_LT(result.after.num_ands, before.num_ands);
    EXPECT_EQ(result.passes.size(), 3u);
    EXPECT_EQ(result.iterations, 1u);
    EXPECT_TRUE(random_simulation_equal(cleanup(net), golden, 64));
}

TEST(flow_engine, iterate_until_convergence_stops)
{
    auto net = random_network(51, 8, 100, 4);
    const auto golden = cleanup(net);
    flow_params params;
    params.iterate_until_convergence = true;
    params.max_flow_iterations = 5;
    pass_context ctx;
    const auto result = run_flow(net, make_flow("mc+cleanup", params), ctx);
    EXPECT_GE(result.iterations, 1u);
    EXPECT_LE(result.iterations, 5u);
    EXPECT_TRUE(exhaustive_equal(cleanup(net), golden));
}

// ------------------------------------------------- deprecated shim parity

TEST(rewrite_shims, legacy_and_pass_api_produce_identical_results)
{
    const auto source = random_network(61);
    auto legacy_net = cleanup(source); // two structurally identical copies
    auto pass_net = cleanup(source);
    const auto golden = cleanup(source);

    const auto legacy = mc_rewrite(legacy_net);

    pass_context ctx;
    const auto ps = mc_rewrite_pass{}.run(pass_net, ctx);

    EXPECT_EQ(legacy.rounds.size(), ps.rounds.size());
    EXPECT_EQ(legacy.ands_after(), ps.after.num_ands);
    EXPECT_TRUE(exhaustive_equal(cleanup(legacy_net), golden));
    EXPECT_TRUE(exhaustive_equal(cleanup(pass_net), golden));
}

TEST(rewrite_shims, size_rewrite_still_works)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    net.create_po(net.create_maj_naive(a, b, c));
    const auto golden = cleanup(net);
    const auto gates_before = net.num_gates();
    size_rewrite(net);
    EXPECT_LE(net.num_gates(), gates_before);
    EXPECT_TRUE(exhaustive_equal(cleanup(net), golden));
}

} // namespace
} // namespace mcx
