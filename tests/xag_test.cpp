#include "xag/cleanup.h"
#include "xag/depth.h"
#include "xag/simulate.h"
#include "xag/verify.h"
#include "xag/xag.h"

#include <gtest/gtest.h>

#include <random>

namespace mcx {
namespace {

TEST(signal_type, literal_packing)
{
    const signal s{7, true};
    EXPECT_EQ(s.node(), 7u);
    EXPECT_TRUE(s.complemented());
    EXPECT_EQ((!s).node(), 7u);
    EXPECT_FALSE((!s).complemented());
    EXPECT_EQ(s ^ true, !s);
    EXPECT_EQ(s ^ false, s);
}

TEST(xag_network, constants_and_pis)
{
    xag net;
    EXPECT_EQ(net.get_constant(false).node(), 0u);
    EXPECT_EQ(net.get_constant(true), !net.get_constant(false));
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    EXPECT_EQ(net.num_pis(), 2u);
    EXPECT_TRUE(net.is_pi(a.node()));
    EXPECT_EQ(net.pi_index(a.node()), 0u);
    EXPECT_EQ(net.pi_index(b.node()), 1u);
    EXPECT_THROW(net.pi_index(0), std::invalid_argument);
}

TEST(xag_network, and_constant_folding)
{
    xag net;
    const auto a = net.create_pi();
    EXPECT_EQ(net.create_and(net.get_constant(false), a),
              net.get_constant(false));
    EXPECT_EQ(net.create_and(net.get_constant(true), a), a);
    EXPECT_EQ(net.create_and(a, a), a);
    EXPECT_EQ(net.create_and(a, !a), net.get_constant(false));
    EXPECT_EQ(net.num_gates(), 0u);
}

TEST(xag_network, xor_constant_folding)
{
    xag net;
    const auto a = net.create_pi();
    EXPECT_EQ(net.create_xor(net.get_constant(false), a), a);
    EXPECT_EQ(net.create_xor(net.get_constant(true), a), !a);
    EXPECT_EQ(net.create_xor(a, a), net.get_constant(false));
    EXPECT_EQ(net.create_xor(a, !a), net.get_constant(true));
    EXPECT_EQ(net.num_gates(), 0u);
}

TEST(xag_network, structural_hashing_and)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto g1 = net.create_and(a, b);
    const auto g2 = net.create_and(b, a);
    EXPECT_EQ(g1, g2);
    EXPECT_EQ(net.num_ands(), 1u);
    // Different polarities are different AND gates.
    const auto g3 = net.create_and(!a, b);
    EXPECT_NE(g1, g3);
    EXPECT_EQ(net.num_ands(), 2u);
}

TEST(xag_network, structural_hashing_xor_polarity)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto g1 = net.create_xor(a, b);
    const auto g2 = net.create_xor(!a, b);
    const auto g3 = net.create_xor(a, !b);
    const auto g4 = net.create_xor(!a, !b);
    EXPECT_EQ(net.num_xors(), 1u);
    EXPECT_EQ(g2, !g1);
    EXPECT_EQ(g3, !g1);
    EXPECT_EQ(g4, g1);
}

TEST(xag_network, full_adder_simulation)
{
    // Fig. 1(a): textbook full adder with 3 AND and 2 XOR gates.
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto cin = net.create_pi();
    const auto axb = net.create_xor(a, b);
    const auto sum = net.create_xor(axb, cin);
    const auto cout =
        net.create_or(net.create_and(a, b), net.create_and(axb, cin));
    net.create_po(sum);
    net.create_po(cout);
    EXPECT_EQ(net.num_ands(), 3u);
    EXPECT_EQ(net.num_xors(), 2u);

    const auto tts = simulate(net);
    ASSERT_EQ(tts.size(), 2u);
    EXPECT_EQ(tts[0].to_hex(), "96"); // sum = parity
    EXPECT_EQ(tts[1].to_hex(), "e8"); // cout = majority (paper Example 3.1)
    net.check_integrity();
}

TEST(xag_network, maj_has_one_and)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    net.create_po(net.create_maj(a, b, c));
    EXPECT_EQ(net.num_ands(), 1u);
    EXPECT_EQ(simulate(net)[0].to_hex(), "e8");

    // The textbook structure spends 3 ANDs on products plus 2 on the ORs
    // (an OR is an AND with inverters in the XAG basis).
    xag naive;
    const auto x = naive.create_pi();
    const auto y = naive.create_pi();
    const auto z = naive.create_pi();
    naive.create_po(naive.create_maj_naive(x, y, z));
    EXPECT_EQ(naive.num_ands(), 5u);
    EXPECT_EQ(simulate(naive)[0].to_hex(), "e8");
}

TEST(xag_network, ite_matches_mux_semantics)
{
    xag net;
    const auto c = net.create_pi();
    const auto t = net.create_pi();
    const auto e = net.create_pi();
    net.create_po(net.create_ite(c, t, e));
    EXPECT_EQ(net.num_ands(), 1u);
    const auto tt = simulate(net)[0];
    for (uint64_t x = 0; x < 8; ++x) {
        const bool cv = x & 1, tv = (x >> 1) & 1, ev = (x >> 2) & 1;
        EXPECT_EQ(tt.get_bit(x), cv ? tv : ev);
    }
}

TEST(xag_network, substitute_simple)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto ab = net.create_and(a, b);
    const auto top = net.create_xor(ab, c);
    net.create_po(top);
    const auto before = simulate(net);

    // ~(~a | ~b) strashes onto the very same node as a&b.
    const auto equivalent = !net.create_or(!a, !b);
    EXPECT_EQ(equivalent, ab);

    // Substitute a&b by a *different* function (a|b): the PO must change to
    // (a|b)^c while the network stays consistent.
    const auto a_or_b = net.create_or(a, b);
    net.take_ref(a_or_b);
    net.substitute(ab.node(), a_or_b);
    net.release_ref(net.resolve(a_or_b));
    net.check_integrity();
    const auto after = simulate(net);
    EXPECT_NE(after, before);
    const auto or_tt = truth_table::projection(3, 0) |
                       truth_table::projection(3, 1);
    EXPECT_EQ(after[0], or_tt ^ truth_table::projection(3, 2));
}

TEST(xag_network, substitute_preserves_function)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto ab = net.create_and(a, b);
    const auto f = net.create_xor(ab, c);
    net.create_po(f);
    const auto before = simulate(net);

    // a & b == !(!a | !b) == !( !a & !b | ... ), build via XOR identity:
    // a & b = (a ^ b ^ (a | b)).  Create that structure and substitute.
    const auto a_or_b = net.create_or(a, b);
    const auto candidate = net.create_xor(net.create_xor(a, b), a_or_b);
    net.take_ref(candidate);
    net.substitute(ab.node(), candidate);
    net.release_ref(candidate);
    net.check_integrity();
    EXPECT_EQ(simulate(net), before);
}

TEST(xag_network, substitute_cascades_folding)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto ab = net.create_and(a, b);
    const auto g = net.create_xor(ab, b);
    net.create_po(g);

    // Substituting ab := b turns g into b ^ b = 0: the PO must fold to the
    // constant and both gates must be collected.
    net.substitute(ab.node(), b);
    net.check_integrity();
    EXPECT_EQ(net.po_at(0), net.get_constant(false));
    EXPECT_EQ(net.num_gates(), 0u);
}

TEST(xag_network, substitute_merges_structural_duplicates)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto ab = net.create_and(a, b);
    const auto ac = net.create_and(a, c);
    const auto g1 = net.create_xor(ab, c);
    const auto g2 = net.create_xor(ac, c);
    net.create_po(g1);
    net.create_po(g2);
    EXPECT_EQ(net.num_gates(), 4u);

    // After substituting ac := ab, g2 collides with g1 and must merge.
    net.substitute(ac.node(), ab);
    net.check_integrity();
    EXPECT_EQ(net.po_at(0), net.po_at(1));
    EXPECT_EQ(net.num_gates(), 2u);
}

TEST(xag_network, substitute_updates_pos_with_polarity)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto ab = net.create_and(a, b);
    net.create_po(!ab);
    net.substitute(ab.node(), net.create_xor(a, b)); // change function
    net.check_integrity();
    const auto tts = simulate(net);
    EXPECT_EQ(tts[0].to_hex(), "9"); // ~(a ^ b)
}

TEST(xag_network, release_ref_collects_cone)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto g = net.create_and(net.create_xor(a, b), c);
    EXPECT_EQ(net.num_gates(), 2u);
    net.take_ref(g);
    net.release_ref(g);
    net.check_integrity();
    EXPECT_EQ(net.num_gates(), 0u);
}

TEST(xag_network, topological_order_covers_live_cone)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto g1 = net.create_and(a, b);
    const auto g2 = net.create_xor(g1, a);
    net.create_po(g2);
    const auto order = net.topological_order();
    // PIs first, then g1 before g2.
    std::vector<uint32_t> position(net.size(), 0);
    for (uint32_t i = 0; i < order.size(); ++i)
        position[order[i]] = i;
    EXPECT_LT(position[a.node()], position[g1.node()]);
    EXPECT_LT(position[g1.node()], position[g2.node()]);
}

TEST(cleanup_utils, cleanup_drops_dangling)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto used = net.create_and(a, b);
    net.create_po(used);
    // Dangling cone, referenced by nothing.
    net.take_ref(net.create_xor(a, b));
    EXPECT_EQ(net.num_gates(), 2u);

    const auto fresh = cleanup(net);
    EXPECT_EQ(fresh.num_gates(), 1u);
    EXPECT_EQ(fresh.num_pis(), 2u);
    EXPECT_EQ(fresh.num_pos(), 1u);
    EXPECT_TRUE(exhaustive_equal(net, fresh));
}

TEST(cleanup_utils, insert_network_shares_structure)
{
    xag block;
    const auto x = block.create_pi();
    const auto y = block.create_pi();
    block.create_po(block.create_and(x, y));

    xag host;
    const auto a = host.create_pi();
    const auto b = host.create_pi();
    const auto direct = host.create_and(a, b);
    const std::vector<signal> leaves{a, b};
    const auto outs = insert_network(host, block, leaves);
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0], direct); // strash sharing
    EXPECT_EQ(host.num_gates(), 1u);
}

TEST(cleanup_utils, insert_network_respects_polarity)
{
    xag block;
    const auto x = block.create_pi();
    const auto y = block.create_pi();
    block.create_po(!block.create_xor(!x, y));

    xag host;
    const auto a = host.create_pi();
    const auto b = host.create_pi();
    const std::vector<signal> leaves{!a, b};
    const auto outs = insert_network(host, block, leaves);
    host.create_po(outs[0]);
    // f = !((!!a) ^ b) = !(a ^ b)
    EXPECT_EQ(simulate(host)[0].to_hex(), "9");
}

TEST(depth_views, depth_and_and_depth)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto d = net.create_pi();
    const auto g1 = net.create_xor(a, b);
    const auto g2 = net.create_and(g1, c);
    const auto g3 = net.create_and(g2, d);
    net.create_po(g3);
    EXPECT_EQ(depth(net), 3u);
    EXPECT_EQ(and_depth(net), 2u);
}

TEST(verify_utils, random_simulation_catches_difference)
{
    xag a;
    {
        const auto x = a.create_pi();
        const auto y = a.create_pi();
        a.create_po(a.create_and(x, y));
    }
    xag b;
    {
        const auto x = b.create_pi();
        const auto y = b.create_pi();
        b.create_po(b.create_or(x, y));
    }
    EXPECT_FALSE(random_simulation_equal(a, b));
    EXPECT_FALSE(exhaustive_equal(a, b));
    EXPECT_TRUE(random_simulation_equal(a, a));
}

// Randomized stress: build a random XAG, substitute random nodes with
// functionally equal reconstructions, check function and integrity.
class substitute_stress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(substitute_stress, function_preserved)
{
    std::mt19937_64 rng{GetParam()};
    xag net;
    std::vector<signal> pool;
    for (int i = 0; i < 6; ++i)
        pool.push_back(net.create_pi());
    for (int i = 0; i < 60; ++i) {
        const auto a = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        const auto b = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        pool.push_back((rng() & 1) ? net.create_and(a, b)
                                   : net.create_xor(a, b));
    }
    for (int i = 0; i < 8; ++i)
        net.create_po(pool[pool.size() - 1 - i]);
    const auto before = simulate(net);

    for (int round = 0; round < 40; ++round) {
        // Pick a random live gate.
        std::vector<uint32_t> gates;
        for (uint32_t n = 0; n < net.size(); ++n)
            if (net.is_gate(n) && !net.is_dead(n) && net.ref_count(n) > 0)
                gates.push_back(n);
        if (gates.empty())
            break;
        const auto victim = gates[rng() % gates.size()];
        const auto f0 = net.fanin0(victim);
        const auto f1 = net.fanin1(victim);
        // Functionally equal replacement built from scratch:
        //   AND: a & b   == !(!(a&b))            (use or-form)
        //   XOR: a ^ b   == (a | b) & !(a & b)   (adds AND gates, then folds)
        signal replacement;
        if (net.is_and(victim))
            replacement = !net.create_or(!f0, !f1);
        else
            replacement = net.create_and(net.create_or(f0, f1),
                                         !net.create_and(f0, f1));
        net.take_ref(replacement);
        if (replacement.node() != victim)
            net.substitute(victim, replacement);
        net.release_ref(net.resolve(replacement));
        ASSERT_NO_THROW(net.check_integrity()) << "round " << round;
        ASSERT_EQ(simulate(net), before) << "round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, substitute_stress,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 47, 91,
                                           1337));

} // namespace
} // namespace mcx
