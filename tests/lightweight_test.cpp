#include "gen/lightweight.h"
#include "xag/simulate.h"

#include <gtest/gtest.h>

#include <random>

namespace mcx {
namespace {

TEST(simon_generator, circuit_matches_reference)
{
    constexpr uint32_t word_bits = 16, rounds = 32;
    const auto net = gen_simon(word_bits, rounds);
    EXPECT_EQ(net.num_pis(), 2 * word_bits + rounds * word_bits);
    EXPECT_EQ(net.num_pos(), 2 * word_bits);
    // One AND per bit of f per round.
    EXPECT_EQ(net.num_ands(), rounds * word_bits);

    std::mt19937_64 rng{91};
    for (int rep = 0; rep < 4; ++rep) {
        const uint64_t x = rng() & 0xffff, y = rng() & 0xffff;
        std::vector<uint64_t> keys(rounds);
        for (auto& k : keys)
            k = rng() & 0xffff;

        std::vector<bool> in;
        for (uint32_t i = 0; i < word_bits; ++i)
            in.push_back((x >> i) & 1);
        for (uint32_t i = 0; i < word_bits; ++i)
            in.push_back((y >> i) & 1);
        for (const auto k : keys)
            for (uint32_t i = 0; i < word_bits; ++i)
                in.push_back((k >> i) & 1);
        const auto out = simulate_pattern(net, in);

        const auto [ex, ey] =
            simon_encrypt_reference(word_bits, x, y, keys);
        uint64_t gx = 0, gy = 0;
        for (uint32_t i = 0; i < word_bits; ++i) {
            gx |= static_cast<uint64_t>(out[i]) << i;
            gy |= static_cast<uint64_t>(out[word_bits + i]) << i;
        }
        ASSERT_EQ(gx, ex);
        ASSERT_EQ(gy, ey);
    }
}

TEST(simon_generator, validates_width)
{
    EXPECT_THROW(gen_simon(8), std::invalid_argument);
    EXPECT_THROW(gen_simon(65), std::invalid_argument);
}

TEST(keccak_generator, circuit_matches_reference)
{
    constexpr uint32_t lane_bits = 8; // Keccak-f[200]
    const auto net = gen_keccak_f(lane_bits);
    EXPECT_EQ(net.num_pis(), 200u);
    EXPECT_EQ(net.num_pos(), 200u);
    // chi: 25 lanes x lane_bits ANDs x 18 rounds.
    EXPECT_EQ(net.num_ands(), 18u * 25 * lane_bits);

    std::mt19937_64 rng{92};
    for (int rep = 0; rep < 3; ++rep) {
        std::vector<uint64_t> state(25);
        for (auto& lane : state)
            lane = rng() & 0xff;

        std::vector<bool> in;
        for (const auto lane : state)
            for (uint32_t i = 0; i < lane_bits; ++i)
                in.push_back((lane >> i) & 1);
        const auto out = simulate_pattern(net, in);

        const auto expected = keccak_f_reference(lane_bits, state);
        for (int lane = 0; lane < 25; ++lane) {
            uint64_t got = 0;
            for (uint32_t i = 0; i < lane_bits; ++i)
                got |= static_cast<uint64_t>(out[lane * lane_bits + i]) << i;
            ASSERT_EQ(got, expected[lane]) << "lane " << lane;
        }
    }
}

TEST(keccak_generator, permutation_is_bijective_on_samples)
{
    // Distinct inputs must map to distinct outputs.
    std::mt19937_64 rng{93};
    std::vector<uint64_t> s1(25), s2(25);
    for (int i = 0; i < 25; ++i) {
        s1[i] = rng() & 0xff;
        s2[i] = rng() & 0xff;
    }
    s2[0] ^= 1;
    EXPECT_NE(keccak_f_reference(8, s1), keccak_f_reference(8, s2));
}

TEST(keccak_generator, validates_lane_width)
{
    EXPECT_THROW(gen_keccak_f(7), std::invalid_argument);
    EXPECT_THROW(gen_keccak_f(12), std::invalid_argument);
}

} // namespace
} // namespace mcx
