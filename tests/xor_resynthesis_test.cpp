#include "core/rewrite.h"
#include "core/xor_resynthesis.h"
#include "gen/arithmetic.h"
#include "gen/hashes.h"
#include "gen/lightweight.h"
#include "io/bench.h"
#include "par/thread_pool.h"
#include "xag/cleanup.h"
#include "xag/simulate.h"
#include "xag/verify.h"
#include "xag/xag.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace mcx {
namespace {

TEST(xor_resynthesis_pass, extracts_common_pairs)
{
    // Three linear outputs sharing the pair (a ^ b):
    //   y0 = a^b^c, y1 = a^b^d, y2 = a^b^c^d
    // Naive chains cost 2+2+3 = 7 XORs; with the shared pair: 1+3 = 4.
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto d = net.create_pi();
    // Build deliberately unshared chains (different association orders).
    net.create_po(net.create_xor(net.create_xor(a, b), c));
    net.create_po(net.create_xor(net.create_xor(b, d), a));
    net.create_po(net.create_xor(net.create_xor(c, a), net.create_xor(d, b)));
    const auto golden = simulate(net);
    const auto before = net.num_xors();

    const auto stats = xor_resynthesis(net);
    net.check_integrity();
    EXPECT_EQ(simulate(net), golden);
    EXPECT_LT(net.num_xors(), before);
    EXPECT_GE(stats.pairs_extracted, 1u);
    EXPECT_EQ(stats.xors_after, net.num_xors());
}

TEST(xor_resynthesis_pass, cancels_duplicate_terms)
{
    // y = a ^ b ^ a = b: the expansion must cancel the doubled term and the
    // root must collapse to a wire.
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto t = net.create_xor(a, b);
    const auto y = net.create_xor(t, a);
    net.create_po(net.create_and(y, c)); // consume via an AND: block root
    const auto golden = simulate(net);

    xor_resynthesis(net);
    net.check_integrity();
    EXPECT_EQ(simulate(net), golden);
    // y collapsed to b: no XOR gates remain.
    EXPECT_EQ(net.num_xors(), 0u);
}

TEST(xor_resynthesis_pass, preserves_and_count)
{
    std::mt19937_64 rng{81};
    for (int rep = 0; rep < 6; ++rep) {
        xag net;
        std::vector<signal> pool;
        for (int i = 0; i < 8; ++i)
            pool.push_back(net.create_pi());
        for (int i = 0; i < 120; ++i) {
            const auto x = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
            const auto y = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
            pool.push_back((rng() % 3) ? net.create_xor(x, y)
                                       : net.create_and(x, y));
        }
        for (int i = 0; i < 6; ++i)
            net.create_po(pool[pool.size() - 1 - i]);

        const auto golden = cleanup(net);
        const auto ands = net.num_ands();
        xor_resynthesis(net);
        net.check_integrity();
        // Rewiring can only help the AND count (roots collapsing to shared
        // wires let downstream AND gates fold), never hurt it.
        EXPECT_LE(net.num_ands(), ands) << "rep " << rep;
        EXPECT_TRUE(exhaustive_equal(cleanup(net), golden)) << "rep " << rep;
    }
}

TEST(xor_resynthesis_pass, after_mc_rewrite_on_adder)
{
    // The paper's pipeline leaves XOR-heavy affine interfaces behind; the
    // resynthesis pass must clean them up without touching the AND optimum.
    auto net = gen_adder(16);
    mc_rewrite(net);
    const auto ands = net.num_ands();
    const auto golden = cleanup(net);

    const auto stats = xor_resynthesis(net);
    net.check_integrity();
    EXPECT_EQ(net.num_ands(), ands);
    EXPECT_LE(stats.xors_after, stats.xors_before);
    EXPECT_TRUE(random_simulation_equal(cleanup(net), golden, 32));
}

TEST(xor_resynthesis_pass, noop_on_and_only_network)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    net.create_po(net.create_and(a, b));
    const auto stats = xor_resynthesis(net);
    EXPECT_EQ(stats.blocks, 0u);
    EXPECT_EQ(stats.xors_before, stats.xors_after);
}

// ------------------------------------------------------ wide-row pairing

/// Rows of `width` terms sharing a long prefix, deliberately associated
/// differently so the naive trees share nothing.  Terms are AND gates so
/// the PI count stays at 8 (exhaustive verification) while rows grow past
/// the old 16-term pairing cap.
xag wide_row_network(uint32_t width, uint32_t num_rows)
{
    xag net;
    std::vector<signal> pis;
    for (int i = 0; i < 8; ++i)
        pis.push_back(net.create_pi());
    std::vector<signal> terms;
    for (uint32_t i = 0; terms.size() < width + num_rows; ++i)
        for (uint32_t j = i + 1; j < 8 && terms.size() < width + num_rows;
             ++j) {
            const auto t = net.create_and(pis[i] ^ (i & 1), pis[j]);
            if ((i + j) % 3 != 0)
                terms.push_back(t);
            else
                terms.push_back(net.create_and(t, pis[(i + j) % 8] ^ true));
        }
    std::mt19937_64 rng{7};
    for (uint32_t r = 0; r < num_rows; ++r) {
        // Shared prefix terms 0..width-1 plus one private term, built in a
        // per-row shuffled order so every row's tree is distinct.
        std::vector<signal> row(terms.begin(), terms.begin() + width);
        row.push_back(terms[width + r]);
        std::shuffle(row.begin(), row.end(), rng);
        auto acc = row[0];
        for (size_t i = 1; i < row.size(); ++i)
            acc = net.create_xor(acc, row[i]);
        net.create_po(net.create_and(acc, pis[r % 8]));
    }
    return net;
}

TEST(xor_resynthesis_pass, pairs_rows_beyond_the_old_16_term_cap)
{
    // 24-term rows: before PR 4 these skipped pairing entirely and kept
    // their unshared trees (0 pairs, no XOR reduction).
    auto net = wide_row_network(24, 4);
    const auto golden = cleanup(net);
    const auto before = net.num_xors();

    const auto stats = xor_resynthesis(net);
    net.check_integrity();
    EXPECT_GT(stats.widest_row, 16u);
    EXPECT_GT(stats.widest_row_paired, 16u);
    EXPECT_EQ(stats.rows_paired, stats.blocks);
    EXPECT_GT(stats.pairs_extracted, 0u);
    EXPECT_LT(net.num_xors(), before);
    EXPECT_TRUE(exhaustive_equal(cleanup(net), golden));
}

TEST(xor_resynthesis_pass, width_cap_and_budget_still_skip_rows)
{
    // The same network under the legacy cap pairs nothing (every row is
    // wider than 16) but must stay correct and non-increasing.
    auto net = wide_row_network(24, 4);
    const auto golden = cleanup(net);
    const auto before = net.num_xors();
    const auto stats = xor_resynthesis(net, {.max_pairing_width = 16});
    net.check_integrity();
    EXPECT_EQ(stats.rows_paired, 0u);
    EXPECT_EQ(stats.pairs_extracted, 0u);
    EXPECT_LE(net.num_xors(), before);
    EXPECT_TRUE(exhaustive_equal(cleanup(net), golden));

    // A starved work budget admits only the narrowest rows.
    auto net2 = wide_row_network(24, 4);
    const auto stats2 = xor_resynthesis(net2, {.pairing_work_budget = 1});
    EXPECT_EQ(stats2.rows_paired, 0u);
}

TEST(xor_resynthesis_pass, pool_seeding_is_deterministic)
{
    // Pair-count seeding fans out across workers, but with the admission
    // set pinned (unlimited budget ⇒ every row admitted at any worker
    // count) the extracted pairs — and therefore the rebuilt network —
    // must be byte-identical to the sequential pass.  Workloads are kept
    // small enough that unlimited admission stays cheap: wide rows past
    // the legacy cap, an adder's xor-heavy carry interface, and simon's
    // round structure.
    const auto serialize = [](const xag& n) {
        std::ostringstream os;
        write_bench(cleanup(n), os);
        return os.str();
    };
    const auto sources = {wide_row_network(24, 4), wide_row_network(20, 6),
                          gen_adder(16), gen_simon(16, 4)};
    for (const auto& source : sources) {
        auto seq = source;
        xor_resynthesis(seq, {.pairing_work_budget = 0});
        const auto oracle = serialize(seq);
        for (const uint32_t workers : {1u, 4u}) {
            thread_pool pool{workers};
            auto par = source;
            const auto stats = xor_resynthesis(
                par, {.pairing_work_budget = 0, .pool = &pool});
            par.check_integrity();
            EXPECT_EQ(serialize(par), oracle) << workers << " workers";
            EXPECT_EQ(stats.seed_workers, workers);
        }
    }
}

/// A few rows wide enough that one row's pair loop alone exceeds the
/// seeding chunk floor (~4096 pairs), so the pool must split single rows
/// across workers.  16 PIs give 120 distinct AND pairs; doubled variants
/// push the distinct-term pool past the requested width.
xag giant_row_network(uint32_t width, uint32_t num_rows)
{
    xag net;
    std::vector<signal> pis;
    for (int i = 0; i < 16; ++i)
        pis.push_back(net.create_pi());
    std::vector<signal> terms;
    for (uint32_t i = 0; i < 16 && terms.size() < width + num_rows; ++i)
        for (uint32_t j = i + 1; j < 16 && terms.size() < width + num_rows;
             ++j) {
            const auto t = net.create_and(pis[i] ^ (i & 1), pis[j]);
            terms.push_back(t);
            if (terms.size() < width + num_rows)
                terms.push_back(net.create_and(t, pis[(i + j) % 16] ^ true));
        }
    std::mt19937_64 rng{19};
    for (uint32_t r = 0; r < num_rows; ++r) {
        std::vector<signal> row(terms.begin(), terms.begin() + width);
        row.push_back(terms[width + r]);
        std::shuffle(row.begin(), row.end(), rng);
        auto acc = row[0];
        for (size_t i = 1; i < row.size(); ++i)
            acc = net.create_xor(acc, row[i]);
        net.create_po(net.create_and(acc, pis[r % 16]));
    }
    return net;
}

TEST(xor_resynthesis_pass, pool_splits_single_wide_rows_deterministically)
{
    // 150-term rows carry 150·149/2 ≈ 11k pairs each — several seeding
    // chunks — so a single row's quadratic loop is spread across workers
    // rather than serializing on one.  Per-pair sums are schedule-
    // independent, so the rebuilt network must stay byte-identical to the
    // sequential pass at any worker count.
    const auto serialize = [](const xag& n) {
        std::ostringstream os;
        write_bench(cleanup(n), os);
        return os.str();
    };
    const auto source = giant_row_network(150, 3);
    auto seq = source;
    const auto stats_seq = xor_resynthesis(seq, {.pairing_work_budget = 0});
    EXPECT_GE(stats_seq.widest_row_paired, 150u);
    const auto oracle = serialize(seq);
    for (const uint32_t workers : {1u, 4u}) {
        thread_pool pool{workers};
        auto par = source;
        const auto stats = xor_resynthesis(
            par, {.pairing_work_budget = 0, .pool = &pool});
        par.check_integrity();
        EXPECT_EQ(serialize(par), oracle) << workers << " workers";
        EXPECT_EQ(stats.seed_workers, workers);
        EXPECT_GE(stats.widest_row_paired, 150u) << workers << " workers";
    }
}

TEST(xor_resynthesis_pass, pool_scales_the_admission_budget)
{
    // The work budget is per worker: a W-worker pool admits rows until
    // W x budget is spent, so a budget that starves the sequential pass
    // can still pair rows under a pool — and says so in the stats.
    const uint64_t budget = 2400; // admits nothing sequentially (24² = 576
                                  // per row, 4 rows, cumulative cap)
    auto seq = wide_row_network(24, 4);
    const auto stats_seq = xor_resynthesis(seq, {.pairing_work_budget = budget});
    EXPECT_EQ(stats_seq.effective_pairing_budget, budget);

    thread_pool pool{4};
    auto par = wide_row_network(24, 4);
    const auto golden = cleanup(par);
    const auto stats_par = xor_resynthesis(
        par, {.pairing_work_budget = budget, .pool = &pool});
    par.check_integrity();
    EXPECT_EQ(stats_par.effective_pairing_budget, 4 * budget);
    EXPECT_GE(stats_par.rows_paired, stats_seq.rows_paired);
    EXPECT_TRUE(exhaustive_equal(cleanup(par), golden));
}

TEST(xor_resynthesis_pass, keccak_generator_produces_wide_rows)
{
    // A real generator whose linear blocks dwarf the old cap: keccak's
    // theta/chi structure yields rows of hundreds of terms.  Wide-row
    // pairing must hold the XOR count (never grow it) and preserve the
    // function.
    auto net = gen_keccak_f(8);
    const auto golden = cleanup(net);
    const auto stats = xor_resynthesis(net);
    net.check_integrity();
    EXPECT_GT(stats.widest_row, 16u);
    EXPECT_GT(stats.widest_row_paired, 16u);
    EXPECT_GT(stats.rows_paired, 0u);
    EXPECT_LE(stats.xors_after, stats.xors_before);
    EXPECT_TRUE(random_simulation_equal(cleanup(net), golden, 16));
}

} // namespace
} // namespace mcx
