#include "core/rewrite.h"
#include "core/xor_resynthesis.h"
#include "gen/arithmetic.h"
#include "gen/hashes.h"
#include "xag/cleanup.h"
#include "xag/simulate.h"
#include "xag/verify.h"
#include "xag/xag.h"

#include <gtest/gtest.h>

#include <random>

namespace mcx {
namespace {

TEST(xor_resynthesis_pass, extracts_common_pairs)
{
    // Three linear outputs sharing the pair (a ^ b):
    //   y0 = a^b^c, y1 = a^b^d, y2 = a^b^c^d
    // Naive chains cost 2+2+3 = 7 XORs; with the shared pair: 1+3 = 4.
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto d = net.create_pi();
    // Build deliberately unshared chains (different association orders).
    net.create_po(net.create_xor(net.create_xor(a, b), c));
    net.create_po(net.create_xor(net.create_xor(b, d), a));
    net.create_po(net.create_xor(net.create_xor(c, a), net.create_xor(d, b)));
    const auto golden = simulate(net);
    const auto before = net.num_xors();

    const auto stats = xor_resynthesis(net);
    net.check_integrity();
    EXPECT_EQ(simulate(net), golden);
    EXPECT_LT(net.num_xors(), before);
    EXPECT_GE(stats.pairs_extracted, 1u);
    EXPECT_EQ(stats.xors_after, net.num_xors());
}

TEST(xor_resynthesis_pass, cancels_duplicate_terms)
{
    // y = a ^ b ^ a = b: the expansion must cancel the doubled term and the
    // root must collapse to a wire.
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto t = net.create_xor(a, b);
    const auto y = net.create_xor(t, a);
    net.create_po(net.create_and(y, c)); // consume via an AND: block root
    const auto golden = simulate(net);

    xor_resynthesis(net);
    net.check_integrity();
    EXPECT_EQ(simulate(net), golden);
    // y collapsed to b: no XOR gates remain.
    EXPECT_EQ(net.num_xors(), 0u);
}

TEST(xor_resynthesis_pass, preserves_and_count)
{
    std::mt19937_64 rng{81};
    for (int rep = 0; rep < 6; ++rep) {
        xag net;
        std::vector<signal> pool;
        for (int i = 0; i < 8; ++i)
            pool.push_back(net.create_pi());
        for (int i = 0; i < 120; ++i) {
            const auto x = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
            const auto y = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
            pool.push_back((rng() % 3) ? net.create_xor(x, y)
                                       : net.create_and(x, y));
        }
        for (int i = 0; i < 6; ++i)
            net.create_po(pool[pool.size() - 1 - i]);

        const auto golden = cleanup(net);
        const auto ands = net.num_ands();
        xor_resynthesis(net);
        net.check_integrity();
        // Rewiring can only help the AND count (roots collapsing to shared
        // wires let downstream AND gates fold), never hurt it.
        EXPECT_LE(net.num_ands(), ands) << "rep " << rep;
        EXPECT_TRUE(exhaustive_equal(cleanup(net), golden)) << "rep " << rep;
    }
}

TEST(xor_resynthesis_pass, after_mc_rewrite_on_adder)
{
    // The paper's pipeline leaves XOR-heavy affine interfaces behind; the
    // resynthesis pass must clean them up without touching the AND optimum.
    auto net = gen_adder(16);
    mc_rewrite(net);
    const auto ands = net.num_ands();
    const auto golden = cleanup(net);

    const auto stats = xor_resynthesis(net);
    net.check_integrity();
    EXPECT_EQ(net.num_ands(), ands);
    EXPECT_LE(stats.xors_after, stats.xors_before);
    EXPECT_TRUE(random_simulation_equal(cleanup(net), golden, 32));
}

TEST(xor_resynthesis_pass, noop_on_and_only_network)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    net.create_po(net.create_and(a, b));
    const auto stats = xor_resynthesis(net);
    EXPECT_EQ(stats.blocks, 0u);
    EXPECT_EQ(stats.xors_before, stats.xors_after);
}

} // namespace
} // namespace mcx
