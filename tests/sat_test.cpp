#include "core/fault_inject.h"
#include "sat/cnf.h"
#include "sat/equivalence.h"
#include "sat/solver.h"
#include "xag/simulate.h"
#include "xag/xag.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace mcx::sat {
namespace {

literal pos(uint32_t v) { return literal{v, false}; }
literal neg(uint32_t v) { return literal{v, true}; }

TEST(sat_solver, trivial_sat)
{
    solver s;
    const auto a = s.add_variable();
    const auto b = s.add_variable();
    s.add_clause({pos(a), pos(b)});
    s.add_clause({neg(a)});
    EXPECT_EQ(s.solve(), solve_result::satisfiable);
    EXPECT_FALSE(s.model_value(a));
    EXPECT_TRUE(s.model_value(b));
}

TEST(sat_solver, trivial_unsat)
{
    solver s;
    const auto a = s.add_variable();
    s.add_clause({pos(a)});
    s.add_clause({neg(a)});
    EXPECT_EQ(s.solve(), solve_result::unsatisfiable);
}

TEST(sat_solver, empty_clause_is_unsat)
{
    solver s;
    (void)s.add_variable();
    EXPECT_FALSE(s.add_clause(std::initializer_list<literal>{}));
    EXPECT_EQ(s.solve(), solve_result::unsatisfiable);
}

TEST(sat_solver, tautology_is_ignored)
{
    solver s;
    const auto a = s.add_variable();
    EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));
    EXPECT_EQ(s.solve(), solve_result::satisfiable);
}

TEST(sat_solver, unit_propagation_chain)
{
    solver s;
    std::vector<uint32_t> v;
    for (int i = 0; i < 10; ++i)
        v.push_back(s.add_variable());
    for (int i = 0; i + 1 < 10; ++i)
        s.add_clause({neg(v[i]), pos(v[i + 1])}); // v[i] -> v[i+1]
    s.add_clause({pos(v[0])});
    EXPECT_EQ(s.solve(), solve_result::satisfiable);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(s.model_value(v[i]));
}

TEST(sat_solver, pigeonhole_unsat)
{
    // 5 pigeons into 4 holes: classic hard UNSAT family (small instance).
    constexpr int pigeons = 5, holes = 4;
    solver s;
    uint32_t var[pigeons][holes];
    for (auto& row : var)
        for (auto& v : row)
            v = s.add_variable();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<literal> some;
        for (int h = 0; h < holes; ++h)
            some.push_back(pos(var[p][h]));
        s.add_clause(some);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.add_clause({neg(var[p1][h]), neg(var[p2][h])});
    EXPECT_EQ(s.solve(), solve_result::unsatisfiable);
}

TEST(sat_solver, conflict_budget_returns_undecided)
{
    // 8 pigeons into 7 holes is hard enough to need > 2 conflicts.
    constexpr int pigeons = 8, holes = 7;
    solver s;
    std::vector<std::vector<uint32_t>> var(pigeons,
                                           std::vector<uint32_t>(holes));
    for (auto& row : var)
        for (auto& v : row)
            v = s.add_variable();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<literal> some;
        for (int h = 0; h < holes; ++h)
            some.push_back(pos(var[p][h]));
        s.add_clause(some);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.add_clause({neg(var[p1][h]), neg(var[p2][h])});
    EXPECT_EQ(s.solve(2), solve_result::undecided);
}

// Random 3-SAT cross-checked against brute force.
class random_3sat : public ::testing::TestWithParam<uint64_t> {};

TEST_P(random_3sat, agrees_with_bruteforce)
{
    std::mt19937_64 rng{GetParam()};
    constexpr uint32_t num_vars = 12;
    const uint32_t num_clauses = 12 + rng() % 45;

    std::vector<std::vector<literal>> clauses;
    for (uint32_t c = 0; c < num_clauses; ++c) {
        std::vector<literal> cl;
        for (int k = 0; k < 3; ++k)
            cl.push_back(
                literal{static_cast<uint32_t>(rng() % num_vars), (rng() & 1) != 0});
        clauses.push_back(cl);
    }

    bool expected = false;
    for (uint32_t m = 0; m < (1u << num_vars) && !expected; ++m) {
        bool all = true;
        for (const auto& cl : clauses) {
            bool any = false;
            for (const auto l : cl)
                any |= (((m >> l.var()) & 1) != 0) != l.negative();
            if (!any) {
                all = false;
                break;
            }
        }
        expected = all;
    }

    solver s;
    for (uint32_t v = 0; v < num_vars; ++v)
        (void)s.add_variable();
    for (const auto& cl : clauses)
        s.add_clause(cl);
    const auto got = s.solve();
    EXPECT_EQ(got == solve_result::satisfiable, expected);

    if (got == solve_result::satisfiable) {
        // The model must actually satisfy every clause.
        for (const auto& cl : clauses) {
            bool any = false;
            for (const auto l : cl)
                any |= s.model_value(l.var()) != l.negative();
            EXPECT_TRUE(any);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, random_3sat,
                         ::testing::Range<uint64_t>(1, 25));

TEST(cnf_encoding, xag_evaluation_consistency)
{
    // Encode a small XAG, force its inputs, and check the PO literal agrees
    // with simulation for every input pattern.
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    net.create_po(net.create_xor(net.create_and(a, !b), c));
    const auto tt = simulate(net)[0];

    for (uint32_t m = 0; m < 8; ++m) {
        solver s;
        const auto enc = encode(s, net);
        for (uint32_t i = 0; i < 3; ++i)
            s.add_clause({((m >> i) & 1) ? enc.pi_literals[i]
                                         : ~enc.pi_literals[i]});
        // Assert PO equals the simulated value; must stay satisfiable.
        s.add_clause({tt.get_bit(m) ? enc.po_literals[0]
                                    : ~enc.po_literals[0]});
        EXPECT_EQ(s.solve(), solve_result::satisfiable) << "pattern " << m;

        solver s2;
        const auto enc2 = encode(s2, net);
        for (uint32_t i = 0; i < 3; ++i)
            s2.add_clause({((m >> i) & 1) ? enc2.pi_literals[i]
                                          : ~enc2.pi_literals[i]});
        s2.add_clause({tt.get_bit(m) ? ~enc2.po_literals[0]
                                     : enc2.po_literals[0]});
        EXPECT_EQ(s2.solve(), solve_result::unsatisfiable) << "pattern " << m;
    }
}

TEST(equivalence_check, equal_networks)
{
    xag a;
    {
        const auto x = a.create_pi();
        const auto y = a.create_pi();
        const auto z = a.create_pi();
        a.create_po(a.create_maj_naive(x, y, z));
    }
    xag b;
    {
        const auto x = b.create_pi();
        const auto y = b.create_pi();
        const auto z = b.create_pi();
        b.create_po(b.create_maj(x, y, z)); // 1-AND variant
    }
    const auto report = check_equivalence(a, b);
    EXPECT_EQ(report.result, equivalence_result::equivalent);
    EXPECT_FALSE(report.counterexample.has_value());
}

TEST(equivalence_check, different_networks_give_counterexample)
{
    xag a;
    {
        const auto x = a.create_pi();
        const auto y = a.create_pi();
        a.create_po(a.create_and(x, y));
    }
    xag b;
    {
        const auto x = b.create_pi();
        const auto y = b.create_pi();
        b.create_po(b.create_or(x, y));
    }
    const auto report = check_equivalence(a, b);
    ASSERT_EQ(report.result, equivalence_result::not_equivalent);
    ASSERT_TRUE(report.counterexample.has_value());
    const auto& cex = *report.counterexample;
    // The counterexample must actually distinguish the two networks.
    std::vector<bool> in{cex[0], cex[1]};
    EXPECT_NE(simulate_pattern(a, in), simulate_pattern(b, in));
}

TEST(equivalence_check, interface_mismatch_throws)
{
    xag a;
    a.create_po(a.create_pi());
    xag b;
    b.create_po(b.create_and(b.create_pi(), b.create_pi()));
    EXPECT_THROW(check_equivalence(a, b), std::invalid_argument);
}

TEST(equivalence_check, multi_output_adders)
{
    // Ripple-carry vs carry-by-majority 4-bit adders.
    const auto build = [](bool cheap_maj) {
        xag net;
        std::vector<signal> x, y;
        for (int i = 0; i < 4; ++i)
            x.push_back(net.create_pi());
        for (int i = 0; i < 4; ++i)
            y.push_back(net.create_pi());
        auto carry = net.get_constant(false);
        for (int i = 0; i < 4; ++i) {
            const auto sum = net.create_xor(net.create_xor(x[i], y[i]), carry);
            carry = cheap_maj ? net.create_maj(x[i], y[i], carry)
                              : net.create_maj_naive(x[i], y[i], carry);
            net.create_po(sum);
        }
        net.create_po(carry);
        return net;
    };
    const auto report = check_equivalence(build(false), build(true));
    EXPECT_EQ(report.result, equivalence_result::equivalent);
}

// ------------------------------------------- solving under assumptions

// Solving under assumptions must agree with a fresh solver that has the
// same literals as unit clauses — on random CNF, for every seed — and an
// UNSAT answer must come with a failed-assumption subset that is itself
// already unsatisfiable as units.
class assumption_differential : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(assumption_differential, agrees_with_fresh_units)
{
    std::mt19937_64 rng{GetParam()};
    constexpr uint32_t num_vars = 10;
    const uint32_t num_clauses = 14 + rng() % 30;
    std::vector<std::vector<literal>> clauses;
    for (uint32_t c = 0; c < num_clauses; ++c) {
        std::vector<literal> cl;
        for (int k = 0; k < 3; ++k)
            cl.push_back(literal{static_cast<uint32_t>(rng() % num_vars),
                                 (rng() & 1) != 0});
        clauses.push_back(cl);
    }
    std::vector<literal> assumptions;
    for (uint32_t v = 0; v < 3; ++v)
        assumptions.push_back(
            literal{static_cast<uint32_t>(rng() % num_vars), (rng() & 1) != 0});

    solver incremental;
    for (uint32_t v = 0; v < num_vars; ++v)
        (void)incremental.add_variable();
    for (const auto& cl : clauses)
        incremental.add_clause(cl);

    const auto fresh_with_units = [&](std::span<const literal> units) {
        solver s;
        for (uint32_t v = 0; v < num_vars; ++v)
            (void)s.add_variable();
        for (const auto& cl : clauses)
            s.add_clause(cl);
        for (const auto u : units)
            s.add_clause({u});
        return s.solve();
    };

    const auto inc = incremental.solve(assumptions);
    EXPECT_EQ(inc, fresh_with_units(assumptions));

    if (inc == solve_result::unsatisfiable) {
        const auto& failed = incremental.failed_assumptions();
        for (const auto f : failed) {
            EXPECT_TRUE(std::find(assumptions.begin(), assumptions.end(),
                                  f) != assumptions.end())
                << "failed assumption not among the assumptions";
        }
        EXPECT_EQ(fresh_with_units(failed), solve_result::unsatisfiable)
            << "failed-assumption subset is not a reason for UNSAT";
    } else {
        // The model must satisfy the assumptions as well as the clauses.
        for (const auto a : assumptions)
            EXPECT_EQ(incremental.model_value(a.var()), !a.negative());
    }

    // The solver must be reusable after an assumption solve: the base
    // CNF alone must still solve to its assumption-free answer.
    solver base;
    for (uint32_t v = 0; v < num_vars; ++v)
        (void)base.add_variable();
    for (const auto& cl : clauses)
        base.add_clause(cl);
    EXPECT_EQ(incremental.solve(), base.solve());
}

INSTANTIATE_TEST_SUITE_P(seeds, assumption_differential,
                         ::testing::Range<uint64_t>(100, 124));

// ------------------------------------------------- warm incremental CEC

namespace {

xag small_adder(int bits)
{
    xag net;
    std::vector<signal> x, y;
    for (int i = 0; i < bits; ++i)
        x.push_back(net.create_pi());
    for (int i = 0; i < bits; ++i)
        y.push_back(net.create_pi());
    auto carry = net.get_constant(false);
    for (int i = 0; i < bits; ++i) {
        net.create_po(net.create_xor(net.create_xor(x[i], y[i]), carry));
        carry = net.create_maj(x[i], y[i], carry);
    }
    net.create_po(carry);
    return net;
}

/// Same function, different structure: sum bits via double negation of
/// one xor leg, carries via the naive majority expansion.
xag small_adder_variant(int bits)
{
    xag net;
    std::vector<signal> x, y;
    for (int i = 0; i < bits; ++i)
        x.push_back(net.create_pi());
    for (int i = 0; i < bits; ++i)
        y.push_back(net.create_pi());
    auto carry = net.get_constant(false);
    for (int i = 0; i < bits; ++i) {
        net.create_po(!net.create_xor(net.create_xor(x[i], y[i]), !carry));
        carry = net.create_maj_naive(x[i], y[i], carry);
    }
    net.create_po(carry);
    return net;
}

} // namespace

TEST(incremental_cec_check, differential_against_cold_oracle)
{
    const auto golden = small_adder(6);
    const auto equivalent = small_adder_variant(6);

    incremental_cec cec{golden};
    // A sequence of checks — equivalent, equivalent again (session
    // reuse), then a near-miss — must agree with the cold oracle on
    // every single one.
    const xag* candidates[] = {&equivalent, &equivalent, &golden};
    for (const auto* c : candidates) {
        const auto warm = cec.check(*c);
        const auto cold = check_equivalence(*c, golden);
        EXPECT_EQ(warm.result, cold.result);
        EXPECT_EQ(warm.result, equivalence_result::equivalent);
    }
    EXPECT_GE(cec.session_reuses(), 1u);
    // One record per output per check.
    EXPECT_EQ(cec.records().size(),
              3u * static_cast<size_t>(golden.num_pos()));
}

TEST(incremental_cec_check, refutes_after_warm_equivalent_checks)
{
    const auto golden = small_adder(5);
    const auto equivalent = small_adder_variant(5);

    // Same interface, last output complemented: not equivalent.
    xag broken = small_adder_variant(5);
    {
        xag net;
        std::vector<signal> x, y;
        for (int i = 0; i < 5; ++i)
            x.push_back(net.create_pi());
        for (int i = 0; i < 5; ++i)
            y.push_back(net.create_pi());
        auto carry = net.get_constant(false);
        for (int i = 0; i < 5; ++i) {
            net.create_po(
                net.create_xor(net.create_xor(x[i], y[i]), carry));
            carry = net.create_maj(x[i], y[i], carry);
        }
        net.create_po(!carry); // the lie
        broken = std::move(net);
    }

    incremental_cec cec{golden};
    EXPECT_EQ(cec.check(equivalent).result, equivalence_result::equivalent);
    EXPECT_EQ(cec.check(equivalent).result, equivalence_result::equivalent);

    const auto report = cec.check(broken);
    ASSERT_EQ(report.result, equivalence_result::not_equivalent);
    ASSERT_TRUE(report.counterexample.has_value());
    // The counterexample must actually distinguish the networks.
    EXPECT_NE(simulate_pattern(broken, *report.counterexample),
              simulate_pattern(golden, *report.counterexample));

    // And the verifier is not poisoned: the good candidate still passes.
    EXPECT_EQ(cec.check(equivalent).result, equivalence_result::equivalent);
}

TEST(incremental_cec_check, undecided_under_budget)
{
    const auto golden = small_adder(8);
    const auto candidate = small_adder_variant(8);
    incremental_cec cec{golden};
    // A one-conflict total budget cannot finish 9 output proofs.
    const auto report = cec.check(candidate, 1);
    EXPECT_EQ(report.result, equivalence_result::undecided);
    // With the budget lifted the same verifier completes.
    EXPECT_EQ(cec.check(candidate).result, equivalence_result::equivalent);
}

TEST(incremental_cec_check, gc_rebuild_preserves_answers)
{
    const auto golden = small_adder(4);
    incremental_cec cec{golden, 2}; // aggressive GC: rebuild every check
    for (int i = 0; i < 6; ++i) {
        auto candidate = small_adder_variant(4);
        EXPECT_EQ(cec.check(candidate).result,
                  equivalence_result::equivalent)
            << "check " << i;
    }
    EXPECT_GE(cec.rebuilds(), 1u);
}

// ----------------------------------------------- cone verifier (commit)

TEST(cone_verifier_check, equivalent_and_broken_cones)
{
    // net computes po = (a & b) ^ c; replace the AND cone with the
    // equivalent ~(~ab) form, then with a broken one.
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto g = net.create_and(a, b);
    net.create_po(net.create_xor(g, c));

    const std::vector<uint32_t> leaves{a.node(), b.node()};
    cone_verifier verifier;

    // x & y == x ^ (x & ~y): an equivalent replacement cone.
    const auto equivalent =
        net.create_xor(a, net.create_and(a, !b));
    EXPECT_EQ(verifier.verify(net, g.node(), equivalent, leaves),
              equivalence_result::equivalent);

    // x | y is not x & y.
    const auto wrong = !net.create_and(!a, !b);
    EXPECT_EQ(verifier.verify(net, g.node(), wrong, leaves),
              equivalence_result::not_equivalent);

    // Warm solver state from the failures must not poison later checks.
    EXPECT_EQ(verifier.verify(net, g.node(), equivalent, leaves),
              equivalence_result::equivalent);
    EXPECT_EQ(verifier.checks(), 3u);
    EXPECT_GE(verifier.warm_starts(), 2u);
    EXPECT_EQ(verifier.records().size(), 3u);
}

TEST(cone_verifier_check, undecided_on_injected_budget_exhaustion)
{
    // Deterministically force solve() to report budget exhaustion: the
    // verifier must surface `undecided`, and the caller contract (commit
    // layer treats undecided as "simulation remains authoritative") makes
    // that a safe degradation.
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto g = net.create_and(a, b);
    net.create_po(g);
    const std::vector<uint32_t> leaves{a.node(), b.node()};

    cone_verifier verifier;
    fault_injection::arm(fault_site::sat_budget, 1);
    const auto res = verifier.verify(net, g.node(),
                                     net.create_xor(a, net.create_and(a, !b)),
                                     leaves);
    fault_injection::disarm_all();
    EXPECT_EQ(res, equivalence_result::undecided);

    // The verifier recovers once the budget pressure is gone.
    EXPECT_EQ(verifier.verify(net, g.node(),
                              net.create_xor(a, net.create_and(a, !b)),
                              leaves),
              equivalence_result::equivalent);
}

// --------------------------------------- modern-vs-legacy differential

namespace {

/// Random CNF with mixed clause lengths (units through 5-literal) so the
/// binary watcher fast path, the arena long-clause path, and unit
/// propagation at level 0 are all exercised.
std::vector<std::vector<literal>> random_cnf(std::mt19937_64& rng,
                                             uint32_t num_vars,
                                             uint32_t num_clauses)
{
    std::vector<std::vector<literal>> clauses;
    for (uint32_t c = 0; c < num_clauses; ++c) {
        const uint32_t len = (rng() % 10 == 0) ? 1 : 2 + rng() % 4;
        std::vector<literal> cl;
        for (uint32_t k = 0; k < len; ++k)
            cl.push_back(literal{static_cast<uint32_t>(rng() % num_vars),
                                 (rng() & 1) != 0});
        clauses.push_back(cl);
    }
    return clauses;
}

void expect_model_satisfies(const solver& s,
                            const std::vector<std::vector<literal>>& clauses)
{
    for (const auto& cl : clauses) {
        bool any = false;
        for (const auto l : cl)
            any |= s.model_value(l.var()) != l.negative();
        EXPECT_TRUE(any) << engine_name(s.engine())
                         << " model violates a clause";
    }
}

solver build(sat_engine engine, bool preprocess, uint32_t num_vars,
             const std::vector<std::vector<literal>>& clauses)
{
    solver s{sat_params{.engine = engine, .preprocess = preprocess}};
    for (uint32_t v = 0; v < num_vars; ++v)
        (void)s.add_variable();
    for (const auto& cl : clauses)
        s.add_clause(cl);
    return s;
}

} // namespace

// The modern core must be verdict-identical to the legacy engine on random
// CNF across multi-call sequences with assumptions: same answers at every
// step, models that satisfy clauses and assumptions, and failed-assumption
// subsets that are independently unsatisfiable.
class engine_differential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(engine_differential, assumption_sequences_agree_with_legacy)
{
    std::mt19937_64 rng{GetParam()};
    const uint32_t num_vars = 12 + rng() % 16;
    const uint32_t num_clauses = num_vars * 3 + rng() % (num_vars * 3);
    const auto clauses = random_cnf(rng, num_vars, num_clauses);

    auto modern = build(sat_engine::modern, false, num_vars, clauses);
    auto legacy = build(sat_engine::legacy, false, num_vars, clauses);

    // Three rounds: assumption-free, then two random assumption sets —
    // exercising learnt retention between calls on both engines.
    for (int round = 0; round < 3; ++round) {
        std::vector<literal> assumptions;
        if (round > 0)
            for (uint32_t k = 0; k < 1 + rng() % 4; ++k)
                assumptions.push_back(
                    literal{static_cast<uint32_t>(rng() % num_vars),
                            (rng() & 1) != 0});

        const auto vm = modern.solve(assumptions);
        const auto vl = legacy.solve(assumptions);
        EXPECT_EQ(vm, vl) << "round " << round;

        if (vm == solve_result::satisfiable) {
            expect_model_satisfies(modern, clauses);
            expect_model_satisfies(legacy, clauses);
            for (const auto a : assumptions)
                EXPECT_EQ(modern.model_value(a.var()), !a.negative());
        } else if (vm == solve_result::unsatisfiable &&
                   !assumptions.empty()) {
            // The failed subset must come from the assumptions and be a
            // sufficient reason: a fresh legacy solver with the subset as
            // units must still be UNSAT.
            const auto& failed = modern.failed_assumptions();
            for (const auto f : failed)
                EXPECT_TRUE(std::find(assumptions.begin(), assumptions.end(),
                                      f) != assumptions.end());
            auto oracle = build(sat_engine::legacy, false, num_vars, clauses);
            for (const auto f : failed)
                oracle.add_clause({f});
            EXPECT_EQ(oracle.solve(), solve_result::unsatisfiable)
                << "modern failed-assumption subset is not a reason";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, engine_differential,
                         ::testing::Range<uint64_t>(1000, 1075));

// Preprocessing (subsumption + bounded variable elimination) must not
// change any verdict, and reconstructed models must satisfy the ORIGINAL
// clauses — including those of eliminated variables.
class preprocess_differential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(preprocess_differential, verdicts_and_models_agree_with_legacy)
{
    std::mt19937_64 rng{GetParam()};
    const uint32_t num_vars = 15 + rng() % 25;
    // A sub-critical ratio leaves many rarely-occurring variables, so
    // bounded elimination actually fires on most seeds.
    const uint32_t num_clauses = num_vars * 2 + rng() % (num_vars * 2);
    const auto clauses = random_cnf(rng, num_vars, num_clauses);

    auto modern = build(sat_engine::modern, true, num_vars, clauses);
    auto legacy = build(sat_engine::legacy, false, num_vars, clauses);

    const auto vl = legacy.solve();
    // Two assumption-free solves: the second runs on the preprocessed DB.
    for (int round = 0; round < 2; ++round) {
        const auto vm = modern.solve();
        EXPECT_EQ(vm, vl) << "round " << round;
        if (vm == solve_result::satisfiable)
            expect_model_satisfies(modern, clauses);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, preprocess_differential,
                         ::testing::Range<uint64_t>(2000, 2050));

// ------------------------------------------- preprocessing unit tests

TEST(preprocessing, variable_elimination_reconstructs_models)
{
    // x (var 2) occurs in exactly two clauses, (x|a) and (~x|b): bounded
    // elimination resolves them to (a|b) and drops x from the solver.  With
    // (~a) forcing a false, the reconstructed model must set x true to
    // satisfy the original clause (x|a), and b true via (~x|b).
    solver s{sat_params{.preprocess = true}};
    for (int v = 0; v < 3; ++v)
        (void)s.add_variable();
    const std::vector<std::vector<literal>> clauses = {
        {pos(2), pos(0)}, {neg(2), pos(1)}, {neg(0)}};
    for (const auto& cl : clauses)
        s.add_clause(cl);
    ASSERT_EQ(s.solve(), solve_result::satisfiable);
    expect_model_satisfies(s, clauses);
    EXPECT_FALSE(s.model_value(0));
    EXPECT_TRUE(s.model_value(2));
    EXPECT_TRUE(s.model_value(1));
}

TEST(preprocessing, pure_literal_elimination_reconstructs_models)
{
    // p (var 2) occurs only positively: it is eliminated as pure, and the
    // reconstruction must still satisfy p's clauses in the reported model.
    solver s{sat_params{.preprocess = true}};
    for (int v = 0; v < 3; ++v)
        (void)s.add_variable();
    const std::vector<std::vector<literal>> clauses = {
        {pos(2), pos(0)}, {pos(2), pos(1)}, {neg(0), neg(1)}};
    for (const auto& cl : clauses)
        s.add_clause(cl);
    ASSERT_EQ(s.solve(), solve_result::satisfiable);
    expect_model_satisfies(s, clauses);
}

TEST(preprocessing, chained_elimination_reconstructs_in_reverse_order)
{
    // A chain x0 -> x1 -> ... -> x5 where each link is two implications;
    // every interior variable is eliminable, and reconstruction must
    // replay the eliminations in reverse to satisfy the original chain.
    constexpr uint32_t n = 6;
    solver s{sat_params{.preprocess = true}};
    for (uint32_t v = 0; v < n; ++v)
        (void)s.add_variable();
    std::vector<std::vector<literal>> clauses;
    for (uint32_t v = 0; v + 1 < n; ++v) {
        clauses.push_back({neg(v), pos(v + 1)}); // x_v -> x_{v+1}
        clauses.push_back({pos(v), neg(v + 1)}); // x_{v+1} -> x_v
    }
    clauses.push_back({pos(0)});
    for (const auto& cl : clauses)
        s.add_clause(cl);
    ASSERT_EQ(s.solve(), solve_result::satisfiable);
    expect_model_satisfies(s, clauses);
    for (uint32_t v = 0; v < n; ++v)
        EXPECT_TRUE(s.model_value(v)) << "x" << v;
}

TEST(preprocessing, subsumption_preserves_unsat_cores)
{
    // The full binomial CNF over three variables is UNSAT; subsumption and
    // self-subsuming resolution shrink it aggressively, and the verdict
    // must survive the rewrite.
    solver s{sat_params{.preprocess = true}};
    for (int v = 0; v < 3; ++v)
        (void)s.add_variable();
    for (uint32_t m = 0; m < 8; ++m)
        s.add_clause({literal{0, (m & 1) != 0}, literal{1, (m & 2) != 0},
                      literal{2, (m & 4) != 0}});
    EXPECT_EQ(s.solve(), solve_result::unsatisfiable);
}

TEST(preprocessing, eliminated_variable_contact_throws)
{
    // Var 0 (x) occurs once per polarity while every other variable is
    // mixed-polarity, so bounded elimination resolves x away.  Assuming
    // x or adding a clause over it afterwards would be unsound — the
    // solver must refuse loudly rather than answer.
    solver s{sat_params{.preprocess = true}};
    for (int v = 0; v < 4; ++v)
        (void)s.add_variable();
    s.add_clause({pos(0), pos(1)}); // x | a
    s.add_clause({neg(0), pos(2)}); // ~x | b
    s.add_clause({pos(1), neg(3)});
    s.add_clause({neg(1), pos(3)});
    s.add_clause({pos(2), pos(3)});
    s.add_clause({neg(2), neg(3)});
    ASSERT_EQ(s.solve(), solve_result::satisfiable);
    const std::vector<literal> assume_eliminated{pos(0)};
    EXPECT_THROW((void)s.solve(assume_eliminated), std::logic_error);
    EXPECT_THROW(s.add_clause({neg(0), neg(1)}), std::logic_error);
}

TEST(preprocessing, first_assumption_solve_disables_preprocessing)
{
    // Warm incremental users solve under assumptions from the start; the
    // solver must notice and never eliminate variables, so assumptions on
    // any variable keep working across the whole sequence.
    solver s{sat_params{.preprocess = true}};
    for (int v = 0; v < 3; ++v)
        (void)s.add_variable();
    s.add_clause({pos(2), pos(0)});
    s.add_clause({neg(2), pos(1)});
    const std::vector<literal> a1{pos(2)};
    const std::vector<literal> a2{neg(2), pos(0)};
    const std::vector<literal> a3{pos(2), neg(1)};
    EXPECT_EQ(s.solve(a1), solve_result::satisfiable);
    EXPECT_TRUE(s.model_value(1));
    EXPECT_EQ(s.solve(a2), solve_result::satisfiable);
    EXPECT_EQ(s.solve(), solve_result::satisfiable);
    EXPECT_EQ(s.solve(a3), solve_result::unsatisfiable);
}

} // namespace
} // namespace mcx::sat
