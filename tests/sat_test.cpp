#include "core/fault_inject.h"
#include "sat/cnf.h"
#include "sat/equivalence.h"
#include "sat/solver.h"
#include "xag/simulate.h"
#include "xag/xag.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace mcx::sat {
namespace {

literal pos(uint32_t v) { return literal{v, false}; }
literal neg(uint32_t v) { return literal{v, true}; }

TEST(sat_solver, trivial_sat)
{
    solver s;
    const auto a = s.add_variable();
    const auto b = s.add_variable();
    s.add_clause({pos(a), pos(b)});
    s.add_clause({neg(a)});
    EXPECT_EQ(s.solve(), solve_result::satisfiable);
    EXPECT_FALSE(s.model_value(a));
    EXPECT_TRUE(s.model_value(b));
}

TEST(sat_solver, trivial_unsat)
{
    solver s;
    const auto a = s.add_variable();
    s.add_clause({pos(a)});
    s.add_clause({neg(a)});
    EXPECT_EQ(s.solve(), solve_result::unsatisfiable);
}

TEST(sat_solver, empty_clause_is_unsat)
{
    solver s;
    (void)s.add_variable();
    EXPECT_FALSE(s.add_clause(std::initializer_list<literal>{}));
    EXPECT_EQ(s.solve(), solve_result::unsatisfiable);
}

TEST(sat_solver, tautology_is_ignored)
{
    solver s;
    const auto a = s.add_variable();
    EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));
    EXPECT_EQ(s.solve(), solve_result::satisfiable);
}

TEST(sat_solver, unit_propagation_chain)
{
    solver s;
    std::vector<uint32_t> v;
    for (int i = 0; i < 10; ++i)
        v.push_back(s.add_variable());
    for (int i = 0; i + 1 < 10; ++i)
        s.add_clause({neg(v[i]), pos(v[i + 1])}); // v[i] -> v[i+1]
    s.add_clause({pos(v[0])});
    EXPECT_EQ(s.solve(), solve_result::satisfiable);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(s.model_value(v[i]));
}

TEST(sat_solver, pigeonhole_unsat)
{
    // 5 pigeons into 4 holes: classic hard UNSAT family (small instance).
    constexpr int pigeons = 5, holes = 4;
    solver s;
    uint32_t var[pigeons][holes];
    for (auto& row : var)
        for (auto& v : row)
            v = s.add_variable();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<literal> some;
        for (int h = 0; h < holes; ++h)
            some.push_back(pos(var[p][h]));
        s.add_clause(some);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.add_clause({neg(var[p1][h]), neg(var[p2][h])});
    EXPECT_EQ(s.solve(), solve_result::unsatisfiable);
}

TEST(sat_solver, conflict_budget_returns_undecided)
{
    // 8 pigeons into 7 holes is hard enough to need > 2 conflicts.
    constexpr int pigeons = 8, holes = 7;
    solver s;
    std::vector<std::vector<uint32_t>> var(pigeons,
                                           std::vector<uint32_t>(holes));
    for (auto& row : var)
        for (auto& v : row)
            v = s.add_variable();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<literal> some;
        for (int h = 0; h < holes; ++h)
            some.push_back(pos(var[p][h]));
        s.add_clause(some);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.add_clause({neg(var[p1][h]), neg(var[p2][h])});
    EXPECT_EQ(s.solve(2), solve_result::undecided);
}

// Random 3-SAT cross-checked against brute force.
class random_3sat : public ::testing::TestWithParam<uint64_t> {};

TEST_P(random_3sat, agrees_with_bruteforce)
{
    std::mt19937_64 rng{GetParam()};
    constexpr uint32_t num_vars = 12;
    const uint32_t num_clauses = 12 + rng() % 45;

    std::vector<std::vector<literal>> clauses;
    for (uint32_t c = 0; c < num_clauses; ++c) {
        std::vector<literal> cl;
        for (int k = 0; k < 3; ++k)
            cl.push_back(
                literal{static_cast<uint32_t>(rng() % num_vars), (rng() & 1) != 0});
        clauses.push_back(cl);
    }

    bool expected = false;
    for (uint32_t m = 0; m < (1u << num_vars) && !expected; ++m) {
        bool all = true;
        for (const auto& cl : clauses) {
            bool any = false;
            for (const auto l : cl)
                any |= (((m >> l.var()) & 1) != 0) != l.negative();
            if (!any) {
                all = false;
                break;
            }
        }
        expected = all;
    }

    solver s;
    for (uint32_t v = 0; v < num_vars; ++v)
        (void)s.add_variable();
    for (const auto& cl : clauses)
        s.add_clause(cl);
    const auto got = s.solve();
    EXPECT_EQ(got == solve_result::satisfiable, expected);

    if (got == solve_result::satisfiable) {
        // The model must actually satisfy every clause.
        for (const auto& cl : clauses) {
            bool any = false;
            for (const auto l : cl)
                any |= s.model_value(l.var()) != l.negative();
            EXPECT_TRUE(any);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, random_3sat,
                         ::testing::Range<uint64_t>(1, 25));

TEST(cnf_encoding, xag_evaluation_consistency)
{
    // Encode a small XAG, force its inputs, and check the PO literal agrees
    // with simulation for every input pattern.
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    net.create_po(net.create_xor(net.create_and(a, !b), c));
    const auto tt = simulate(net)[0];

    for (uint32_t m = 0; m < 8; ++m) {
        solver s;
        const auto enc = encode(s, net);
        for (uint32_t i = 0; i < 3; ++i)
            s.add_clause({((m >> i) & 1) ? enc.pi_literals[i]
                                         : ~enc.pi_literals[i]});
        // Assert PO equals the simulated value; must stay satisfiable.
        s.add_clause({tt.get_bit(m) ? enc.po_literals[0]
                                    : ~enc.po_literals[0]});
        EXPECT_EQ(s.solve(), solve_result::satisfiable) << "pattern " << m;

        solver s2;
        const auto enc2 = encode(s2, net);
        for (uint32_t i = 0; i < 3; ++i)
            s2.add_clause({((m >> i) & 1) ? enc2.pi_literals[i]
                                          : ~enc2.pi_literals[i]});
        s2.add_clause({tt.get_bit(m) ? ~enc2.po_literals[0]
                                     : enc2.po_literals[0]});
        EXPECT_EQ(s2.solve(), solve_result::unsatisfiable) << "pattern " << m;
    }
}

TEST(equivalence_check, equal_networks)
{
    xag a;
    {
        const auto x = a.create_pi();
        const auto y = a.create_pi();
        const auto z = a.create_pi();
        a.create_po(a.create_maj_naive(x, y, z));
    }
    xag b;
    {
        const auto x = b.create_pi();
        const auto y = b.create_pi();
        const auto z = b.create_pi();
        b.create_po(b.create_maj(x, y, z)); // 1-AND variant
    }
    const auto report = check_equivalence(a, b);
    EXPECT_EQ(report.result, equivalence_result::equivalent);
    EXPECT_FALSE(report.counterexample.has_value());
}

TEST(equivalence_check, different_networks_give_counterexample)
{
    xag a;
    {
        const auto x = a.create_pi();
        const auto y = a.create_pi();
        a.create_po(a.create_and(x, y));
    }
    xag b;
    {
        const auto x = b.create_pi();
        const auto y = b.create_pi();
        b.create_po(b.create_or(x, y));
    }
    const auto report = check_equivalence(a, b);
    ASSERT_EQ(report.result, equivalence_result::not_equivalent);
    ASSERT_TRUE(report.counterexample.has_value());
    const auto& cex = *report.counterexample;
    // The counterexample must actually distinguish the two networks.
    std::vector<bool> in{cex[0], cex[1]};
    EXPECT_NE(simulate_pattern(a, in), simulate_pattern(b, in));
}

TEST(equivalence_check, interface_mismatch_throws)
{
    xag a;
    a.create_po(a.create_pi());
    xag b;
    b.create_po(b.create_and(b.create_pi(), b.create_pi()));
    EXPECT_THROW(check_equivalence(a, b), std::invalid_argument);
}

TEST(equivalence_check, multi_output_adders)
{
    // Ripple-carry vs carry-by-majority 4-bit adders.
    const auto build = [](bool cheap_maj) {
        xag net;
        std::vector<signal> x, y;
        for (int i = 0; i < 4; ++i)
            x.push_back(net.create_pi());
        for (int i = 0; i < 4; ++i)
            y.push_back(net.create_pi());
        auto carry = net.get_constant(false);
        for (int i = 0; i < 4; ++i) {
            const auto sum = net.create_xor(net.create_xor(x[i], y[i]), carry);
            carry = cheap_maj ? net.create_maj(x[i], y[i], carry)
                              : net.create_maj_naive(x[i], y[i], carry);
            net.create_po(sum);
        }
        net.create_po(carry);
        return net;
    };
    const auto report = check_equivalence(build(false), build(true));
    EXPECT_EQ(report.result, equivalence_result::equivalent);
}

// ------------------------------------------- solving under assumptions

// Solving under assumptions must agree with a fresh solver that has the
// same literals as unit clauses — on random CNF, for every seed — and an
// UNSAT answer must come with a failed-assumption subset that is itself
// already unsatisfiable as units.
class assumption_differential : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(assumption_differential, agrees_with_fresh_units)
{
    std::mt19937_64 rng{GetParam()};
    constexpr uint32_t num_vars = 10;
    const uint32_t num_clauses = 14 + rng() % 30;
    std::vector<std::vector<literal>> clauses;
    for (uint32_t c = 0; c < num_clauses; ++c) {
        std::vector<literal> cl;
        for (int k = 0; k < 3; ++k)
            cl.push_back(literal{static_cast<uint32_t>(rng() % num_vars),
                                 (rng() & 1) != 0});
        clauses.push_back(cl);
    }
    std::vector<literal> assumptions;
    for (uint32_t v = 0; v < 3; ++v)
        assumptions.push_back(
            literal{static_cast<uint32_t>(rng() % num_vars), (rng() & 1) != 0});

    solver incremental;
    for (uint32_t v = 0; v < num_vars; ++v)
        (void)incremental.add_variable();
    for (const auto& cl : clauses)
        incremental.add_clause(cl);

    const auto fresh_with_units = [&](std::span<const literal> units) {
        solver s;
        for (uint32_t v = 0; v < num_vars; ++v)
            (void)s.add_variable();
        for (const auto& cl : clauses)
            s.add_clause(cl);
        for (const auto u : units)
            s.add_clause({u});
        return s.solve();
    };

    const auto inc = incremental.solve(assumptions);
    EXPECT_EQ(inc, fresh_with_units(assumptions));

    if (inc == solve_result::unsatisfiable) {
        const auto& failed = incremental.failed_assumptions();
        for (const auto f : failed) {
            EXPECT_TRUE(std::find(assumptions.begin(), assumptions.end(),
                                  f) != assumptions.end())
                << "failed assumption not among the assumptions";
        }
        EXPECT_EQ(fresh_with_units(failed), solve_result::unsatisfiable)
            << "failed-assumption subset is not a reason for UNSAT";
    } else {
        // The model must satisfy the assumptions as well as the clauses.
        for (const auto a : assumptions)
            EXPECT_EQ(incremental.model_value(a.var()), !a.negative());
    }

    // The solver must be reusable after an assumption solve: the base
    // CNF alone must still solve to its assumption-free answer.
    solver base;
    for (uint32_t v = 0; v < num_vars; ++v)
        (void)base.add_variable();
    for (const auto& cl : clauses)
        base.add_clause(cl);
    EXPECT_EQ(incremental.solve(), base.solve());
}

INSTANTIATE_TEST_SUITE_P(seeds, assumption_differential,
                         ::testing::Range<uint64_t>(100, 124));

// ------------------------------------------------- warm incremental CEC

namespace {

xag small_adder(int bits)
{
    xag net;
    std::vector<signal> x, y;
    for (int i = 0; i < bits; ++i)
        x.push_back(net.create_pi());
    for (int i = 0; i < bits; ++i)
        y.push_back(net.create_pi());
    auto carry = net.get_constant(false);
    for (int i = 0; i < bits; ++i) {
        net.create_po(net.create_xor(net.create_xor(x[i], y[i]), carry));
        carry = net.create_maj(x[i], y[i], carry);
    }
    net.create_po(carry);
    return net;
}

/// Same function, different structure: sum bits via double negation of
/// one xor leg, carries via the naive majority expansion.
xag small_adder_variant(int bits)
{
    xag net;
    std::vector<signal> x, y;
    for (int i = 0; i < bits; ++i)
        x.push_back(net.create_pi());
    for (int i = 0; i < bits; ++i)
        y.push_back(net.create_pi());
    auto carry = net.get_constant(false);
    for (int i = 0; i < bits; ++i) {
        net.create_po(!net.create_xor(net.create_xor(x[i], y[i]), !carry));
        carry = net.create_maj_naive(x[i], y[i], carry);
    }
    net.create_po(carry);
    return net;
}

} // namespace

TEST(incremental_cec_check, differential_against_cold_oracle)
{
    const auto golden = small_adder(6);
    const auto equivalent = small_adder_variant(6);

    incremental_cec cec{golden};
    // A sequence of checks — equivalent, equivalent again (session
    // reuse), then a near-miss — must agree with the cold oracle on
    // every single one.
    const xag* candidates[] = {&equivalent, &equivalent, &golden};
    for (const auto* c : candidates) {
        const auto warm = cec.check(*c);
        const auto cold = check_equivalence(*c, golden);
        EXPECT_EQ(warm.result, cold.result);
        EXPECT_EQ(warm.result, equivalence_result::equivalent);
    }
    EXPECT_GE(cec.session_reuses(), 1u);
    // One record per output per check.
    EXPECT_EQ(cec.records().size(),
              3u * static_cast<size_t>(golden.num_pos()));
}

TEST(incremental_cec_check, refutes_after_warm_equivalent_checks)
{
    const auto golden = small_adder(5);
    const auto equivalent = small_adder_variant(5);

    // Same interface, last output complemented: not equivalent.
    xag broken = small_adder_variant(5);
    {
        xag net;
        std::vector<signal> x, y;
        for (int i = 0; i < 5; ++i)
            x.push_back(net.create_pi());
        for (int i = 0; i < 5; ++i)
            y.push_back(net.create_pi());
        auto carry = net.get_constant(false);
        for (int i = 0; i < 5; ++i) {
            net.create_po(
                net.create_xor(net.create_xor(x[i], y[i]), carry));
            carry = net.create_maj(x[i], y[i], carry);
        }
        net.create_po(!carry); // the lie
        broken = std::move(net);
    }

    incremental_cec cec{golden};
    EXPECT_EQ(cec.check(equivalent).result, equivalence_result::equivalent);
    EXPECT_EQ(cec.check(equivalent).result, equivalence_result::equivalent);

    const auto report = cec.check(broken);
    ASSERT_EQ(report.result, equivalence_result::not_equivalent);
    ASSERT_TRUE(report.counterexample.has_value());
    // The counterexample must actually distinguish the networks.
    EXPECT_NE(simulate_pattern(broken, *report.counterexample),
              simulate_pattern(golden, *report.counterexample));

    // And the verifier is not poisoned: the good candidate still passes.
    EXPECT_EQ(cec.check(equivalent).result, equivalence_result::equivalent);
}

TEST(incremental_cec_check, undecided_under_budget)
{
    const auto golden = small_adder(8);
    const auto candidate = small_adder_variant(8);
    incremental_cec cec{golden};
    // A one-conflict total budget cannot finish 9 output proofs.
    const auto report = cec.check(candidate, 1);
    EXPECT_EQ(report.result, equivalence_result::undecided);
    // With the budget lifted the same verifier completes.
    EXPECT_EQ(cec.check(candidate).result, equivalence_result::equivalent);
}

TEST(incremental_cec_check, gc_rebuild_preserves_answers)
{
    const auto golden = small_adder(4);
    incremental_cec cec{golden, 2}; // aggressive GC: rebuild every check
    for (int i = 0; i < 6; ++i) {
        auto candidate = small_adder_variant(4);
        EXPECT_EQ(cec.check(candidate).result,
                  equivalence_result::equivalent)
            << "check " << i;
    }
    EXPECT_GE(cec.rebuilds(), 1u);
}

// ----------------------------------------------- cone verifier (commit)

TEST(cone_verifier_check, equivalent_and_broken_cones)
{
    // net computes po = (a & b) ^ c; replace the AND cone with the
    // equivalent ~(~ab) form, then with a broken one.
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto g = net.create_and(a, b);
    net.create_po(net.create_xor(g, c));

    const std::vector<uint32_t> leaves{a.node(), b.node()};
    cone_verifier verifier;

    // x & y == x ^ (x & ~y): an equivalent replacement cone.
    const auto equivalent =
        net.create_xor(a, net.create_and(a, !b));
    EXPECT_EQ(verifier.verify(net, g.node(), equivalent, leaves),
              equivalence_result::equivalent);

    // x | y is not x & y.
    const auto wrong = !net.create_and(!a, !b);
    EXPECT_EQ(verifier.verify(net, g.node(), wrong, leaves),
              equivalence_result::not_equivalent);

    // Warm solver state from the failures must not poison later checks.
    EXPECT_EQ(verifier.verify(net, g.node(), equivalent, leaves),
              equivalence_result::equivalent);
    EXPECT_EQ(verifier.checks(), 3u);
    EXPECT_GE(verifier.warm_starts(), 2u);
    EXPECT_EQ(verifier.records().size(), 3u);
}

TEST(cone_verifier_check, undecided_on_injected_budget_exhaustion)
{
    // Deterministically force solve() to report budget exhaustion: the
    // verifier must surface `undecided`, and the caller contract (commit
    // layer treats undecided as "simulation remains authoritative") makes
    // that a safe degradation.
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto g = net.create_and(a, b);
    net.create_po(g);
    const std::vector<uint32_t> leaves{a.node(), b.node()};

    cone_verifier verifier;
    fault_injection::arm(fault_site::sat_budget, 1);
    const auto res = verifier.verify(net, g.node(),
                                     net.create_xor(a, net.create_and(a, !b)),
                                     leaves);
    fault_injection::disarm_all();
    EXPECT_EQ(res, equivalence_result::undecided);

    // The verifier recovers once the budget pressure is gone.
    EXPECT_EQ(verifier.verify(net, g.node(),
                              net.create_xor(a, net.create_and(a, !b)),
                              leaves),
              equivalence_result::equivalent);
}

} // namespace
} // namespace mcx::sat
