#include "sat/cnf.h"
#include "sat/equivalence.h"
#include "sat/solver.h"
#include "xag/simulate.h"
#include "xag/xag.h"

#include <gtest/gtest.h>

#include <random>

namespace mcx::sat {
namespace {

literal pos(uint32_t v) { return literal{v, false}; }
literal neg(uint32_t v) { return literal{v, true}; }

TEST(sat_solver, trivial_sat)
{
    solver s;
    const auto a = s.add_variable();
    const auto b = s.add_variable();
    s.add_clause({pos(a), pos(b)});
    s.add_clause({neg(a)});
    EXPECT_EQ(s.solve(), solve_result::satisfiable);
    EXPECT_FALSE(s.model_value(a));
    EXPECT_TRUE(s.model_value(b));
}

TEST(sat_solver, trivial_unsat)
{
    solver s;
    const auto a = s.add_variable();
    s.add_clause({pos(a)});
    s.add_clause({neg(a)});
    EXPECT_EQ(s.solve(), solve_result::unsatisfiable);
}

TEST(sat_solver, empty_clause_is_unsat)
{
    solver s;
    (void)s.add_variable();
    EXPECT_FALSE(s.add_clause(std::initializer_list<literal>{}));
    EXPECT_EQ(s.solve(), solve_result::unsatisfiable);
}

TEST(sat_solver, tautology_is_ignored)
{
    solver s;
    const auto a = s.add_variable();
    EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));
    EXPECT_EQ(s.solve(), solve_result::satisfiable);
}

TEST(sat_solver, unit_propagation_chain)
{
    solver s;
    std::vector<uint32_t> v;
    for (int i = 0; i < 10; ++i)
        v.push_back(s.add_variable());
    for (int i = 0; i + 1 < 10; ++i)
        s.add_clause({neg(v[i]), pos(v[i + 1])}); // v[i] -> v[i+1]
    s.add_clause({pos(v[0])});
    EXPECT_EQ(s.solve(), solve_result::satisfiable);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(s.model_value(v[i]));
}

TEST(sat_solver, pigeonhole_unsat)
{
    // 5 pigeons into 4 holes: classic hard UNSAT family (small instance).
    constexpr int pigeons = 5, holes = 4;
    solver s;
    uint32_t var[pigeons][holes];
    for (auto& row : var)
        for (auto& v : row)
            v = s.add_variable();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<literal> some;
        for (int h = 0; h < holes; ++h)
            some.push_back(pos(var[p][h]));
        s.add_clause(some);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.add_clause({neg(var[p1][h]), neg(var[p2][h])});
    EXPECT_EQ(s.solve(), solve_result::unsatisfiable);
}

TEST(sat_solver, conflict_budget_returns_undecided)
{
    // 8 pigeons into 7 holes is hard enough to need > 2 conflicts.
    constexpr int pigeons = 8, holes = 7;
    solver s;
    std::vector<std::vector<uint32_t>> var(pigeons,
                                           std::vector<uint32_t>(holes));
    for (auto& row : var)
        for (auto& v : row)
            v = s.add_variable();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<literal> some;
        for (int h = 0; h < holes; ++h)
            some.push_back(pos(var[p][h]));
        s.add_clause(some);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.add_clause({neg(var[p1][h]), neg(var[p2][h])});
    EXPECT_EQ(s.solve(2), solve_result::undecided);
}

// Random 3-SAT cross-checked against brute force.
class random_3sat : public ::testing::TestWithParam<uint64_t> {};

TEST_P(random_3sat, agrees_with_bruteforce)
{
    std::mt19937_64 rng{GetParam()};
    constexpr uint32_t num_vars = 12;
    const uint32_t num_clauses = 12 + rng() % 45;

    std::vector<std::vector<literal>> clauses;
    for (uint32_t c = 0; c < num_clauses; ++c) {
        std::vector<literal> cl;
        for (int k = 0; k < 3; ++k)
            cl.push_back(
                literal{static_cast<uint32_t>(rng() % num_vars), (rng() & 1) != 0});
        clauses.push_back(cl);
    }

    bool expected = false;
    for (uint32_t m = 0; m < (1u << num_vars) && !expected; ++m) {
        bool all = true;
        for (const auto& cl : clauses) {
            bool any = false;
            for (const auto l : cl)
                any |= (((m >> l.var()) & 1) != 0) != l.negative();
            if (!any) {
                all = false;
                break;
            }
        }
        expected = all;
    }

    solver s;
    for (uint32_t v = 0; v < num_vars; ++v)
        (void)s.add_variable();
    for (const auto& cl : clauses)
        s.add_clause(cl);
    const auto got = s.solve();
    EXPECT_EQ(got == solve_result::satisfiable, expected);

    if (got == solve_result::satisfiable) {
        // The model must actually satisfy every clause.
        for (const auto& cl : clauses) {
            bool any = false;
            for (const auto l : cl)
                any |= s.model_value(l.var()) != l.negative();
            EXPECT_TRUE(any);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, random_3sat,
                         ::testing::Range<uint64_t>(1, 25));

TEST(cnf_encoding, xag_evaluation_consistency)
{
    // Encode a small XAG, force its inputs, and check the PO literal agrees
    // with simulation for every input pattern.
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    net.create_po(net.create_xor(net.create_and(a, !b), c));
    const auto tt = simulate(net)[0];

    for (uint32_t m = 0; m < 8; ++m) {
        solver s;
        const auto enc = encode(s, net);
        for (uint32_t i = 0; i < 3; ++i)
            s.add_clause({((m >> i) & 1) ? enc.pi_literals[i]
                                         : ~enc.pi_literals[i]});
        // Assert PO equals the simulated value; must stay satisfiable.
        s.add_clause({tt.get_bit(m) ? enc.po_literals[0]
                                    : ~enc.po_literals[0]});
        EXPECT_EQ(s.solve(), solve_result::satisfiable) << "pattern " << m;

        solver s2;
        const auto enc2 = encode(s2, net);
        for (uint32_t i = 0; i < 3; ++i)
            s2.add_clause({((m >> i) & 1) ? enc2.pi_literals[i]
                                          : ~enc2.pi_literals[i]});
        s2.add_clause({tt.get_bit(m) ? ~enc2.po_literals[0]
                                     : enc2.po_literals[0]});
        EXPECT_EQ(s2.solve(), solve_result::unsatisfiable) << "pattern " << m;
    }
}

TEST(equivalence_check, equal_networks)
{
    xag a;
    {
        const auto x = a.create_pi();
        const auto y = a.create_pi();
        const auto z = a.create_pi();
        a.create_po(a.create_maj_naive(x, y, z));
    }
    xag b;
    {
        const auto x = b.create_pi();
        const auto y = b.create_pi();
        const auto z = b.create_pi();
        b.create_po(b.create_maj(x, y, z)); // 1-AND variant
    }
    const auto report = check_equivalence(a, b);
    EXPECT_EQ(report.result, equivalence_result::equivalent);
    EXPECT_FALSE(report.counterexample.has_value());
}

TEST(equivalence_check, different_networks_give_counterexample)
{
    xag a;
    {
        const auto x = a.create_pi();
        const auto y = a.create_pi();
        a.create_po(a.create_and(x, y));
    }
    xag b;
    {
        const auto x = b.create_pi();
        const auto y = b.create_pi();
        b.create_po(b.create_or(x, y));
    }
    const auto report = check_equivalence(a, b);
    ASSERT_EQ(report.result, equivalence_result::not_equivalent);
    ASSERT_TRUE(report.counterexample.has_value());
    const auto& cex = *report.counterexample;
    // The counterexample must actually distinguish the two networks.
    std::vector<bool> in{cex[0], cex[1]};
    EXPECT_NE(simulate_pattern(a, in), simulate_pattern(b, in));
}

TEST(equivalence_check, interface_mismatch_throws)
{
    xag a;
    a.create_po(a.create_pi());
    xag b;
    b.create_po(b.create_and(b.create_pi(), b.create_pi()));
    EXPECT_THROW(check_equivalence(a, b), std::invalid_argument);
}

TEST(equivalence_check, multi_output_adders)
{
    // Ripple-carry vs carry-by-majority 4-bit adders.
    const auto build = [](bool cheap_maj) {
        xag net;
        std::vector<signal> x, y;
        for (int i = 0; i < 4; ++i)
            x.push_back(net.create_pi());
        for (int i = 0; i < 4; ++i)
            y.push_back(net.create_pi());
        auto carry = net.get_constant(false);
        for (int i = 0; i < 4; ++i) {
            const auto sum = net.create_xor(net.create_xor(x[i], y[i]), carry);
            carry = cheap_maj ? net.create_maj(x[i], y[i], carry)
                              : net.create_maj_naive(x[i], y[i], carry);
            net.create_po(sum);
        }
        net.create_po(carry);
        return net;
    };
    const auto report = check_equivalence(build(false), build(true));
    EXPECT_EQ(report.result, equivalence_result::equivalent);
}

} // namespace
} // namespace mcx::sat
