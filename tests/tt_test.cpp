#include "tt/operations.h"
#include "tt/truth_table.h"

#include <gtest/gtest.h>

#include <random>

namespace mcx {
namespace {

truth_table random_tt(uint32_t num_vars, std::mt19937_64& rng)
{
    truth_table t{num_vars};
    for (auto& w : t.words())
        w = rng();
    if (num_vars < 6)
        t.words()[0] &= tt_mask(num_vars);
    return t;
}

TEST(truth_table, projections_match_definition)
{
    for (uint32_t n = 1; n <= 8; ++n) {
        for (uint32_t k = 0; k < n; ++k) {
            const auto p = truth_table::projection(n, k);
            for (uint64_t x = 0; x < p.num_bits(); ++x)
                ASSERT_EQ(p.get_bit(x), ((x >> k) & 1) != 0)
                    << "n=" << n << " k=" << k << " x=" << x;
        }
    }
}

TEST(truth_table, projection_out_of_range_throws)
{
    EXPECT_THROW(truth_table::projection(3, 3), std::invalid_argument);
}

TEST(truth_table, constants)
{
    for (uint32_t n : {0u, 1u, 3u, 6u, 9u}) {
        const auto zero = truth_table::constant(n, false);
        const auto one = truth_table::constant(n, true);
        EXPECT_TRUE(zero.is_constant(false));
        EXPECT_TRUE(one.is_constant(true));
        EXPECT_EQ(zero.count_ones(), 0u);
        EXPECT_EQ(one.count_ones(), one.num_bits());
        EXPECT_EQ(~zero, one);
        EXPECT_EQ(~one, zero);
    }
}

TEST(truth_table, boolean_operations_small)
{
    const auto a = truth_table::projection(2, 0);
    const auto b = truth_table::projection(2, 1);
    EXPECT_EQ((a & b).word(), 0x8u);
    EXPECT_EQ((a | b).word(), 0xeu);
    EXPECT_EQ((a ^ b).word(), 0x6u);
    EXPECT_EQ((~a).word(), 0x5u);
}

TEST(truth_table, not_masks_unused_bits)
{
    const truth_table t{3, 0x96};
    const auto inv = ~t;
    EXPECT_EQ(inv.word(), 0x69u);
    EXPECT_EQ((~inv).word(), 0x96u);
}

TEST(truth_table, hex_roundtrip)
{
    std::mt19937_64 rng{42};
    for (uint32_t n = 0; n <= 9; ++n) {
        for (int rep = 0; rep < 16; ++rep) {
            const auto t = random_tt(n, rng);
            EXPECT_EQ(truth_table::from_hex(n, t.to_hex()), t)
                << "n=" << n << " hex=" << t.to_hex();
        }
    }
}

TEST(truth_table, hex_known_values)
{
    // Full adder carry-out: majority of 3 inputs = 0xe8 (paper Example 3.1).
    const auto a = truth_table::projection(3, 0);
    const auto b = truth_table::projection(3, 1);
    const auto c = truth_table::projection(3, 2);
    const auto maj = (a & b) | (a & c) | (b & c);
    EXPECT_EQ(maj.to_hex(), "e8");
    // AND as 3-variable function with a don't-care input = 0x88.
    EXPECT_EQ((a & b).to_hex(), "88");
}

TEST(truth_table, from_hex_rejects_bad_input)
{
    EXPECT_THROW(truth_table::from_hex(3, "123"), std::invalid_argument);
    EXPECT_THROW(truth_table::from_hex(3, "g8"), std::invalid_argument);
}

TEST(truth_table, flip_var_matches_bruteforce)
{
    std::mt19937_64 rng{7};
    for (uint32_t n : {3u, 6u, 8u}) {
        const auto t = random_tt(n, rng);
        for (uint32_t k = 0; k < n; ++k) {
            const auto flipped = t.flip_var(k);
            for (uint64_t x = 0; x < t.num_bits(); ++x)
                ASSERT_EQ(flipped.get_bit(x), t.get_bit(x ^ (uint64_t{1} << k)));
        }
    }
}

TEST(truth_table, swap_vars_matches_bruteforce)
{
    std::mt19937_64 rng{8};
    for (uint32_t n : {3u, 7u}) {
        const auto t = random_tt(n, rng);
        for (uint32_t i = 0; i < n; ++i)
            for (uint32_t j = 0; j < n; ++j) {
                const auto s = t.swap_vars(i, j);
                for (uint64_t x = 0; x < t.num_bits(); ++x) {
                    uint64_t y = x;
                    const bool bi = (x >> i) & 1, bj = (x >> j) & 1;
                    y = (y & ~(uint64_t{1} << i)) | (uint64_t{bj} << i);
                    y = (y & ~(uint64_t{1} << j)) | (uint64_t{bi} << j);
                    ASSERT_EQ(s.get_bit(x), t.get_bit(y));
                }
            }
    }
}

TEST(truth_table, cofactor_matches_bruteforce)
{
    std::mt19937_64 rng{9};
    for (uint32_t n : {4u, 7u}) {
        const auto t = random_tt(n, rng);
        for (uint32_t k = 0; k < n; ++k)
            for (bool value : {false, true}) {
                const auto cof = t.cofactor(k, value);
                for (uint64_t x = 0; x < t.num_bits(); ++x) {
                    uint64_t y = (x & ~(uint64_t{1} << k)) |
                                 (uint64_t{value} << k);
                    ASSERT_EQ(cof.get_bit(x), t.get_bit(y));
                }
                EXPECT_FALSE(cof.has_var(k));
            }
    }
}

TEST(truth_table, shannon_expansion_identity)
{
    std::mt19937_64 rng{10};
    for (int rep = 0; rep < 10; ++rep) {
        const auto t = random_tt(6, rng);
        for (uint32_t k = 0; k < 6; ++k) {
            const auto xk = truth_table::projection(6, k);
            const auto rebuilt =
                (xk & t.cofactor(k, true)) | (~xk & t.cofactor(k, false));
            ASSERT_EQ(rebuilt, t);
        }
    }
}

TEST(truth_table, support_detects_dont_cares)
{
    const auto a = truth_table::projection(4, 0);
    const auto c = truth_table::projection(4, 2);
    const auto f = a ^ c;
    EXPECT_EQ(f.support(), (std::vector<uint32_t>{0, 2}));
    EXPECT_TRUE(f.has_var(0));
    EXPECT_FALSE(f.has_var(1));
    EXPECT_TRUE(f.has_var(2));
    EXPECT_FALSE(f.has_var(3));
}

TEST(operations, shrink_to_support_roundtrip)
{
    std::mt19937_64 rng{11};
    // Build a 6-var function that only uses variables 1, 3, 4.
    const auto g3 = random_tt(3, rng);
    const std::vector<uint32_t> where{1, 3, 4};
    const auto f = expand(g3, where, 6);
    const auto view = shrink_to_support(f);
    ASSERT_LE(view.support.size(), 3u);
    const auto back = expand(view.function, view.support, 6);
    EXPECT_EQ(back, f);
}

TEST(operations, expand_positions_validated)
{
    const truth_table f{2, 0x8};
    const std::vector<uint32_t> bad{0};
    EXPECT_THROW(expand(f, bad, 4), std::invalid_argument);
}

TEST(operations, anf_is_involution)
{
    std::mt19937_64 rng{12};
    for (uint32_t n : {2u, 5u, 7u}) {
        for (int rep = 0; rep < 8; ++rep) {
            const auto t = random_tt(n, rng);
            EXPECT_EQ(from_anf(to_anf(t)), t);
        }
    }
}

TEST(operations, anf_known_coefficients)
{
    const auto a = truth_table::projection(2, 0);
    const auto b = truth_table::projection(2, 1);
    // x0 & x1 has single monomial x0x1 -> ANF bit at index 3.
    EXPECT_EQ(to_anf(a & b).word(), 0x8u);
    // x0 | x1 = x0 ^ x1 ^ x0x1 -> bits at 1, 2, 3.
    EXPECT_EQ(to_anf(a | b).word(), 0xeu);
    // XOR is linear.
    EXPECT_EQ(to_anf(a ^ b).word(), 0x6u);
}

TEST(operations, degree_of_standard_functions)
{
    const auto a = truth_table::projection(3, 0);
    const auto b = truth_table::projection(3, 1);
    const auto c = truth_table::projection(3, 2);
    EXPECT_EQ(degree(truth_table::constant(3, false)), 0u);
    EXPECT_EQ(degree(a), 1u);
    EXPECT_EQ(degree(a ^ b ^ c), 1u);
    EXPECT_EQ(degree(a & b), 2u);
    EXPECT_EQ(degree((a & b) | (a & c) | (b & c)), 2u); // majority
    EXPECT_EQ(degree(a & b & c), 3u);
    EXPECT_TRUE(is_affine_function(~(a ^ b)));
    EXPECT_FALSE(is_affine_function(a & b));
}

TEST(operations, affine_op_translation)
{
    // f = x0 x1; substituting x0 <- x0 ^ x1 yields (x0 ^ x1) x1 = x1 & ~x0...
    // check against direct evaluation instead of a hand formula.
    std::mt19937_64 rng{13};
    const auto f = random_tt(4, rng);
    const auto g = op_translation(f, 0, 2);
    for (uint64_t x = 0; x < 16; ++x) {
        const uint64_t y = x ^ (((x >> 2) & 1) << 0);
        ASSERT_EQ(g.get_bit(x), f.get_bit(y));
    }
    EXPECT_THROW(op_translation(f, 1, 1), std::invalid_argument);
}

TEST(operations, affine_ops_are_involutions)
{
    std::mt19937_64 rng{14};
    const auto f = random_tt(5, rng);
    EXPECT_EQ(op_swap(op_swap(f, 1, 3), 1, 3), f);
    EXPECT_EQ(op_input_complement(op_input_complement(f, 2), 2), f);
    EXPECT_EQ(op_output_complement(op_output_complement(f)), f);
    EXPECT_EQ(op_translation(op_translation(f, 0, 4), 0, 4), f);
    EXPECT_EQ(op_disjoint_translation(op_disjoint_translation(f, 3), 3), f);
}

TEST(operations, apply_affine_identity)
{
    std::mt19937_64 rng{15};
    const auto f = random_tt(4, rng);
    const std::vector<uint32_t> id{1, 2, 4, 8};
    EXPECT_EQ(apply_affine(f, id, 0, 0, false), f);
    EXPECT_EQ(apply_affine(f, id, 0, 0, true), ~f);
}

TEST(operations, apply_affine_composes_elementary_ops)
{
    std::mt19937_64 rng{16};
    const auto f = random_tt(4, rng);
    // Input complement of variable 1 == c = e1.
    const std::vector<uint32_t> id{1, 2, 4, 8};
    EXPECT_EQ(apply_affine(f, id, 0b0010, 0, false), f.flip_var(1));
    // Disjoint translation f ^ x2 == v = e2.
    EXPECT_EQ(apply_affine(f, id, 0, 0b0100, false),
              op_disjoint_translation(f, 2));
    // Swap of variables 0 and 3 as a permutation matrix.
    const std::vector<uint32_t> swap03{8, 2, 4, 1};
    EXPECT_EQ(apply_affine(f, swap03, 0, 0, false), f.swap_vars(0, 3));
    // x0 <- x0 ^ x2: g(y) = f(My) with column(2) = e2 ^ e0.
    const std::vector<uint32_t> trans{1, 2, 5, 8};
    EXPECT_EQ(apply_affine(f, trans, 0, 0, false), op_translation(f, 0, 2));
}

TEST(truth_table, hash_distinguishes_basic_cases)
{
    const truth_table a{3, 0x88};
    const truth_table b{3, 0xe8};
    const truth_table c{4, 0x88};
    EXPECT_NE(a.hash(), b.hash());
    EXPECT_NE(a.hash(), c.hash()); // same bits, different arity
    EXPECT_EQ(a.hash(), truth_table(3, 0x88).hash());
}

TEST(truth_table, ordering_is_total_on_samples)
{
    const truth_table a{3, 0x12};
    const truth_table b{3, 0x88};
    EXPECT_TRUE(a < b);
    EXPECT_FALSE(b < a);
    EXPECT_FALSE(a < a);
}

} // namespace
} // namespace mcx
