// The memoization layer of the hot loop: the bounded LRU container and the
// cache wrappers in front of NPN canonization, affine classification, and
// the circuit databases.  The invariance property under test everywhere:
// cached and uncached calls return identical results, at any capacity.
#include "core/lru_cache.h"
#include "db/mc_database.h"
#include "npn/npn.h"
#include "spectral/classification.h"
#include "tt/truth_table.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

namespace mcx {
namespace {

TEST(lru_cache_suite, basic_hit_miss_counting)
{
    lru_cache<int, std::string> cache{4};
    EXPECT_EQ(cache.find(1), nullptr);
    cache.insert(1, "one");
    const auto* hit = cache.find(1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, "one");
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(lru_cache_suite, evicts_least_recently_used)
{
    lru_cache<int, int> cache{3};
    cache.insert(1, 10);
    cache.insert(2, 20);
    cache.insert(3, 30);
    ASSERT_NE(cache.find(1), nullptr); // promote 1; LRU is now 2
    cache.insert(4, 40);               // evicts 2
    EXPECT_EQ(cache.find(2), nullptr);
    EXPECT_NE(cache.find(1), nullptr);
    EXPECT_NE(cache.find(3), nullptr);
    EXPECT_NE(cache.find(4), nullptr);
    EXPECT_EQ(cache.size(), 3u);
}

TEST(lru_cache_suite, insert_overwrites_and_promotes)
{
    lru_cache<int, int> cache{2};
    cache.insert(1, 10);
    cache.insert(2, 20);
    cache.insert(1, 11); // overwrite, promotes 1; LRU is 2
    cache.insert(3, 30); // evicts 2
    const auto* one = cache.find(1);
    ASSERT_NE(one, nullptr);
    EXPECT_EQ(*one, 11);
    EXPECT_EQ(cache.find(2), nullptr);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(lru_cache_suite, zero_capacity_clamped_to_one)
{
    lru_cache<int, int> cache{0};
    EXPECT_EQ(cache.capacity(), 1u);
    cache.insert(1, 10);
    EXPECT_NE(cache.find(1), nullptr);
    cache.insert(2, 20);
    EXPECT_EQ(cache.find(1), nullptr);
    EXPECT_NE(cache.find(2), nullptr);
}

truth_table random_tt(uint32_t num_vars, std::mt19937_64& rng)
{
    truth_table t{num_vars};
    t.words()[0] = rng() & tt_mask(num_vars);
    return t;
}

TEST(memo_invariance, npn_cache_eviction_does_not_change_results)
{
    // Capacity far below the working set: every entry is evicted and
    // recomputed repeatedly; results must not depend on hit vs. miss.
    std::mt19937_64 rng{11};
    npn_cache tiny{4};
    std::vector<truth_table> functions;
    for (int i = 0; i < 24; ++i)
        functions.push_back(random_tt(4, rng));
    for (int pass = 0; pass < 3; ++pass) {
        for (const auto& f : functions) {
            const auto& result = tiny.canonize(f);
            ASSERT_EQ(result.representative, npn_canonize(f).representative);
            ASSERT_EQ(result.transform.apply(result.representative), f);
        }
    }
    EXPECT_GT(tiny.misses(), 24u); // evictions forced recomputation
}

TEST(memo_invariance, classification_cache_eviction_does_not_change_results)
{
    std::mt19937_64 rng{12};
    classification_cache tiny{{}, 2};
    classification_cache big{{}};
    std::vector<truth_table> functions;
    for (int i = 0; i < 12; ++i)
        functions.push_back(random_tt(4, rng));
    // Two full passes: the tiny cache has evicted each entry long before it
    // comes around again, the big cache hits every repeat.
    for (int pass = 0; pass < 2; ++pass) {
        for (const auto& f : functions) {
            const auto& a = tiny.classify(f);
            ASSERT_TRUE(a.success);
            const auto rep_a = a.representative; // copy: `b` may evict `a`
            const auto& b = big.classify(f);
            ASSERT_TRUE(b.success);
            ASSERT_EQ(rep_a, b.representative) << f.to_hex();
        }
    }
    EXPECT_GT(tiny.misses(), big.misses());
    EXPECT_GT(big.hits(), 0u);
}

TEST(memo_invariance, classification_cache_counts_traffic)
{
    classification_cache cache;
    const truth_table maj{3, 0xe8};
    cache.classify(maj);
    cache.classify(maj);
    cache.classify(maj);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(memo_invariance, mc_database_counts_hits_and_misses)
{
    mc_database db;
    classification_cache cache;
    const auto& cls = cache.classify(truth_table{3, 0xe8});
    ASSERT_TRUE(cls.success);
    const auto rep = cls.representative;
    db.lookup_or_build(rep);
    EXPECT_EQ(db.misses(), 1u);
    EXPECT_EQ(db.hits(), 0u);
    const auto& again = db.lookup_or_build(rep);
    EXPECT_EQ(db.misses(), 1u);
    EXPECT_EQ(db.hits(), 1u);
    EXPECT_GT(again.circuit.num_pis(), 0u);
}

} // namespace
} // namespace mcx
