// End-to-end pipeline tests: generators -> optimizer -> exporters, verified
// by simulation against software references and by SAT equivalence, plus
// the flow-level equivalence sweep (`mc+xor` over every generator family).
#include "core/flow.h"
#include "core/rewrite.h"
#include "db/mc_database.h"
#include "gen/aes.h"
#include "gen/arithmetic.h"
#include "gen/control.h"
#include "gen/des.h"
#include "gen/hashes.h"
#include "gen/lightweight.h"
#include "io/bench.h"
#include "io/bristol.h"
#include "sat/equivalence.h"
#include "spectral/classification.h"
#include "xag/cleanup.h"
#include "xag/depth.h"
#include "xag/simulate.h"
#include "xag/verify.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace mcx {
namespace {

TEST(integration, optimized_des_still_encrypts)
{
    auto net = gen_des(2); // two rounds keep the test fast
    mc_database db;
    classification_cache cache;
    mc_rewrite(net, db, cache, {}, 3);
    net.check_integrity();

    // Compare against an independently-built reference circuit by random
    // simulation (the reference integer model covers 16 rounds only).
    const auto reference = gen_des(2);
    EXPECT_TRUE(random_simulation_equal(cleanup(net), cleanup(reference), 64));
}

TEST(integration, optimized_sbox_equals_reference)
{
    xag net;
    std::array<signal, 8> in;
    for (auto& s : in)
        s = net.create_pi();
    for (const auto s : aes_sbox_circuit(net, in))
        net.create_po(s);

    const auto before = net.num_ands();
    mc_rewrite(net);
    EXPECT_LE(net.num_ands(), before);

    const auto tts = simulate(net);
    for (uint32_t x = 0; x < 256; ++x) {
        uint8_t y = 0;
        for (int b = 0; b < 8; ++b)
            y |= static_cast<uint8_t>(tts[b].get_bit(x)) << b;
        ASSERT_EQ(y, aes_sbox_reference(static_cast<uint8_t>(x)));
    }
}

TEST(integration, optimize_then_export_bristol_sat_equivalent)
{
    auto net = gen_adder(12);
    const auto golden = cleanup(net);
    mc_rewrite(net);
    auto optimized = cleanup(net);

    std::stringstream buffer;
    write_bristol(optimized, buffer);
    const auto reparsed = read_bristol(buffer);

    const auto report = sat::check_equivalence(reparsed, golden);
    EXPECT_EQ(report.result, sat::equivalence_result::equivalent);
}

TEST(integration, optimize_then_export_bench_roundtrip)
{
    auto net = gen_comparator_lt_unsigned(8); // 16 PIs: exhaustive range
    mc_rewrite(net);
    auto optimized = cleanup(net);

    std::stringstream buffer;
    write_bench(optimized, buffer);
    const auto reparsed = read_bench(buffer);
    EXPECT_TRUE(exhaustive_equal(optimized, reparsed));
}

TEST(integration, rewriting_reduces_multiplicative_depth_of_adders)
{
    // Not a paper claim, but a sanity property of the majority rewrite:
    // replacing 2-AND-deep carry cones with single ANDs cannot deepen.
    auto net = gen_adder(16);
    const auto depth_before = and_depth(net);
    mc_rewrite(net);
    EXPECT_LE(and_depth(net), depth_before);
}

TEST(integration, database_roundtrip_through_rewrite)
{
    // Warm a database on one circuit, save, reload, and use it on another.
    mc_database db;
    classification_cache cache;
    auto first = gen_multiplier(8);
    mc_rewrite(first, db, cache, {}, 4);

    std::stringstream buffer;
    db.save(buffer);
    auto reloaded = mc_database::load(buffer);
    EXPECT_EQ(reloaded.size(), db.size());

    auto second = gen_multiplier(8);
    const auto golden = cleanup(second);
    classification_cache cache2;
    mc_rewrite(second, reloaded, cache2, {}, 4);
    EXPECT_TRUE(exhaustive_equal(cleanup(second), golden));
    EXPECT_EQ(second.num_ands(), first.num_ands());
}

TEST(integration, combined_xag_db_matches_entries)
{
    // The paper's XAG_DB: one network, one output per representative.
    mc_database db;
    std::mt19937_64 rng{77};
    for (int i = 0; i < 6; ++i) {
        truth_table f{4};
        f.words()[0] = rng() & tt_mask(4);
        const auto cls = classify_affine(f, {.iteration_limit = 2'000'000});
        if (cls.success)
            db.lookup_or_build(cls.representative);
    }
    const auto combined = db.export_combined();
    ASSERT_EQ(combined.representatives.size(), db.size());
    EXPECT_EQ(combined.network.num_pis(), 6u);
    EXPECT_EQ(combined.network.num_pos(), db.size());

    const auto tts = simulate(combined.network);
    for (size_t i = 0; i < combined.representatives.size(); ++i) {
        const auto& rep = combined.representatives[i];
        // Output i, restricted to the entry's variable count, must equal
        // the representative.
        for (uint64_t x = 0; x < rep.num_bits(); ++x)
            ASSERT_EQ(tts[i].get_bit(x), rep.get_bit(x))
                << "entry " << i << " x=" << x;
    }
}

// Parameterized pipeline sweep: every parameter combination must preserve
// function and network invariants.
struct sweep_params {
    uint32_t cut_size;
    uint32_t cut_limit;
    bool zero_gain;
};

class rewrite_sweep : public ::testing::TestWithParam<sweep_params> {};

TEST_P(rewrite_sweep, preserves_function_and_invariants)
{
    const auto p = GetParam();
    std::mt19937_64 rng{p.cut_size * 100 + p.cut_limit};
    xag net;
    std::vector<signal> pool;
    for (int i = 0; i < 9; ++i)
        pool.push_back(net.create_pi());
    for (int i = 0; i < 150; ++i) {
        const auto a = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        const auto b = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        pool.push_back((rng() % 3) ? net.create_and(a, b)
                                   : net.create_xor(a, b));
    }
    for (int i = 0; i < 6; ++i)
        net.create_po(pool[pool.size() - 1 - i]);

    const auto golden = cleanup(net);
    const auto before = net.num_ands();

    rewrite_params params;
    params.cut_size = p.cut_size;
    params.cut_limit = p.cut_limit;
    params.allow_zero_gain = p.zero_gain;
    mc_rewrite(net, params, 4);

    net.check_integrity();
    EXPECT_LE(net.num_ands(), before);
    EXPECT_TRUE(exhaustive_equal(cleanup(net), golden))
        << "cut_size=" << p.cut_size << " cut_limit=" << p.cut_limit
        << " zero_gain=" << p.zero_gain;
}

INSTANTIATE_TEST_SUITE_P(
    parameter_grid, rewrite_sweep,
    ::testing::Values(sweep_params{2, 4, false}, sweep_params{3, 8, false},
                      sweep_params{4, 12, false}, sweep_params{5, 12, false},
                      sweep_params{6, 12, false}, sweep_params{6, 4, false},
                      sweep_params{6, 25, false}, sweep_params{4, 8, true},
                      sweep_params{6, 12, true}));

// ------------------------------------------------- flow-level equivalence
//
// `mc+xor` over every src/gen/ generator family at small widths: the
// optimized network must be equivalent to the unoptimized one —
// exhaustively when the input count allows, by word-parallel random
// simulation otherwise.

void run_flow_equivalence(xag net, const flow_params& params = {})
{
    const auto golden = cleanup(net);
    pass_context ctx{context_params(params)};
    const auto result = run_flow(net, make_flow("mc+xor", params), ctx);
    EXPECT_LE(result.after.num_ands, result.before.num_ands);
    EXPECT_EQ(result.passes.size(), 2u);
    auto optimized = cleanup(net);
    optimized.check_integrity();
    if (optimized.num_pis() <= 16)
        EXPECT_TRUE(exhaustive_equal(optimized, golden));
    else
        EXPECT_TRUE(random_simulation_equal(optimized, golden, 16));
}

TEST(flow_equivalence, arithmetic_family)
{
    run_flow_equivalence(gen_adder(8));
    run_flow_equivalence(gen_comparator_lt_unsigned(6));
    run_flow_equivalence(gen_multiplier(4));
}

TEST(flow_equivalence, control_family)
{
    run_flow_equivalence(gen_decoder(4));
    run_flow_equivalence(gen_voter(7));
    run_flow_equivalence(gen_priority_encoder(8));
}

TEST(flow_equivalence, aes_family)
{
    xag net;
    std::array<signal, 8> in;
    for (auto& s : in)
        s = net.create_pi();
    for (const auto s : aes_sbox_circuit(net, in))
        net.create_po(s);
    run_flow_equivalence(std::move(net));
}

TEST(flow_equivalence, des_family)
{
    run_flow_equivalence(gen_des(1));
}

TEST(flow_equivalence, lightweight_family)
{
    run_flow_equivalence(gen_simon(16, 4));
    run_flow_equivalence(gen_keccak_f(8));
}

TEST(flow_equivalence, hashes_family)
{
    // Full-size compression function: a budgeted flow configuration (3-cuts,
    // heuristic database, one round) keeps the test affordable while still
    // exercising the whole mc+xor pipeline at hash scale.
    flow_params budget;
    budget.max_rounds = 1;
    budget.rewrite.cut_size = 3;
    budget.rewrite.cut_limit = 4;
    budget.rewrite.db.use_exact = false;
    run_flow_equivalence(gen_md5(), budget);
}

} // namespace
} // namespace mcx
